"""Exact nearest-neighbour search (the FAISS IndexFlat substitute).

The paper's baseline filtering stage uses "a FAISS-based distance search"
(Sec. IV-B) over the item embedding table.  FAISS's flat indexes compute
exact brute-force distances; this module reimplements that semantics in
NumPy for the two metrics the paper uses: cosine distance and inner
product.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["cosine_similarities", "cosine_topk", "inner_product_topk", "topk_indices"]


def topk_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest scores, sorted descending by score.

    Uses argpartition for O(n) selection then sorts only the k winners --
    the same strategy a GPU top-k kernel uses.
    """
    flat = np.asarray(scores, dtype=np.float64).reshape(-1)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, flat.shape[0])
    partitioned = np.argpartition(-flat, k - 1)[:k]
    return partitioned[np.argsort(-flat[partitioned], kind="stable")]


def cosine_similarities(query: np.ndarray, items: np.ndarray) -> np.ndarray:
    """Cosine similarity from one query vector to each item row."""
    vector = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(items, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
        raise ValueError(f"items must be (n, {vector.shape[0]}), got {matrix.shape}")
    query_norm = np.linalg.norm(vector)
    item_norms = np.linalg.norm(matrix, axis=1)
    denominator = item_norms * query_norm
    # Zero-norm rows get similarity 0 (they can never be nearest).
    with np.errstate(divide="ignore", invalid="ignore"):
        similarities = np.where(denominator > 0.0, matrix @ vector / denominator, 0.0)
    return similarities


def cosine_topk(query: np.ndarray, items: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k items by cosine similarity: (indices, similarities)."""
    similarities = cosine_similarities(query, items)
    winners = topk_indices(similarities, k)
    return winners, similarities[winners]


def inner_product_topk(query: np.ndarray, items: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k items by inner product: (indices, scores)."""
    vector = np.asarray(query, dtype=np.float64).reshape(-1)
    matrix = np.asarray(items, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != vector.shape[0]:
        raise ValueError(f"items must be (n, {vector.shape[0]}), got {matrix.shape}")
    scores = matrix @ vector
    winners = topk_indices(scores, k)
    return winners, scores[winners]
