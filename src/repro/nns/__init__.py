"""Nearest-neighbour search: exact (FAISS-flat substitute), LSH, fixed radius."""

from repro.nns.exact import (
    cosine_similarities,
    cosine_topk,
    inner_product_topk,
    topk_indices,
)
from repro.nns.lsh_search import LSHHammingIndex
from repro.nns.fixed_radius import (
    calibrate_population_radius,
    cap_candidates,
    fixed_radius_candidates,
)

__all__ = [
    "cosine_similarities",
    "cosine_topk",
    "inner_product_topk",
    "topk_indices",
    "LSHHammingIndex",
    "calibrate_population_radius",
    "cap_candidates",
    "fixed_radius_candidates",
]
