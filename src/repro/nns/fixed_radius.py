"""Fixed-radius near-neighbour selection policies.

iMARS replaces the filtering stage's top-k candidate selection with "a
fixed-radius near neighbor search instead of top-k search" (Sec. III-B)
because the TCAM threshold match returns *all* rows within a Hamming radius
in one array operation.  The radius plays the role the candidate count k
plays in the baseline; these helpers calibrate a population-level radius so
that the *average* candidate count matches a target, and clamp per-query
candidate sets for the ranking stage.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "calibrate_population_radius",
    "fixed_radius_candidates",
    "fixed_radius_candidates_batch",
    "cap_candidates",
]


def calibrate_population_radius(
    distance_rows: Sequence[np.ndarray],
    target_mean_candidates: float,
    max_radius: int,
) -> int:
    """Radius whose mean candidate count best matches the target.

    Parameters
    ----------
    distance_rows:
        One Hamming-distance vector per calibration query.
    target_mean_candidates:
        Desired average candidate-set size (the paper's O(100)).
    max_radius:
        Upper bound (the signature length).
    """
    if target_mean_candidates <= 0.0:
        raise ValueError("target candidate count must be positive")
    if max_radius < 0:
        raise ValueError("max radius must be non-negative")
    rows = [np.asarray(row, dtype=np.int64) for row in distance_rows]
    if not rows:
        raise ValueError("need at least one calibration query")
    # One histogram over the stacked distances replaces the per-radius
    # per-row scan: mean_count(r) is a cumulative count of distances <= r.
    # Counts grow monotonically in r, so the first global argmin of the
    # gap is exactly what the scan-with-early-break used to return.
    stacked = np.concatenate(rows)
    if stacked.size and stacked.min() < 0:
        raise ValueError("distances must be non-negative")
    histogram = np.bincount(
        np.minimum(stacked, max_radius + 1), minlength=max_radius + 2
    )
    mean_counts = np.cumsum(histogram[: max_radius + 1]) / len(rows)
    gaps = np.abs(mean_counts - target_mean_candidates)
    return int(np.argmin(gaps))


def fixed_radius_candidates(distances: np.ndarray, radius: int) -> np.ndarray:
    """Indices within *radius*, in ascending index (priority-encoder) order."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return np.flatnonzero(np.asarray(distances, dtype=np.int64) <= radius)


def fixed_radius_candidates_batch(
    distances: np.ndarray, radius: int, cap: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched threshold match + nearest-fallback + cap over (Q, N) rows.

    One stable argsort per batch replaces the per-query
    ``fixed_radius_candidates`` / ``argmin`` fallback / ``cap_candidates``
    chain, reproducing its semantics exactly for every row:

    * rows with ``count`` in-radius entries keep all of them when
      ``count <= cap``, else the ``cap`` closest (stable ties by index);
    * empty rows fall back to the single nearest signature (the
      threshold raised one step);
    * each row's survivors come back in ascending index order.

    Returns ``(padded, counts)``: ``padded`` is (Q, max(counts)) int64
    with each row's ``counts[q]`` candidate indices ascending, padded
    with ``N`` (one past the last valid index); ``counts`` is (Q,).
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    matrix = np.asarray(distances, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError(f"distances must be (Q, N), got {matrix.shape}")
    num_queries, num_items = matrix.shape
    counts = np.clip((matrix <= radius).sum(axis=1), 1, cap)
    width = int(counts.max()) if num_queries else 1
    # Stable sort by (distance, index): the first ``count`` positions are
    # precisely the in-radius set (or the argmin fallback for count=1
    # rows), with capping preferring smaller distances then lower index --
    # the cap_candidates rule.
    order = np.argsort(matrix, axis=1, kind="stable")[:, :width]
    padded = np.where(np.arange(width) < counts[:, None], order, num_items)
    # Ascending-index (priority-encoder) order within each row; the
    # ``num_items`` sentinels sort past every real index.
    return np.sort(padded, axis=1), counts


def cap_candidates(candidates: np.ndarray, distances: np.ndarray, cap: int) -> np.ndarray:
    """Keep at most *cap* candidates, preferring smaller distances.

    The item buffer has finite capacity; when the threshold match returns
    more rows than the buffer holds, the closest candidates are retained
    (realised in hardware by stepping the reference current down).
    """
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    chosen = np.asarray(candidates, dtype=np.int64)
    if chosen.shape[0] <= cap:
        return chosen
    all_distances = np.asarray(distances, dtype=np.int64)
    order = np.argsort(all_distances[chosen], kind="stable")
    return np.sort(chosen[order[:cap]])
