"""Fixed-radius near-neighbour selection policies.

iMARS replaces the filtering stage's top-k candidate selection with "a
fixed-radius near neighbor search instead of top-k search" (Sec. III-B)
because the TCAM threshold match returns *all* rows within a Hamming radius
in one array operation.  The radius plays the role the candidate count k
plays in the baseline; these helpers calibrate a population-level radius so
that the *average* candidate count matches a target, and clamp per-query
candidate sets for the ranking stage.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["calibrate_population_radius", "fixed_radius_candidates", "cap_candidates"]


def calibrate_population_radius(
    distance_rows: Sequence[np.ndarray],
    target_mean_candidates: float,
    max_radius: int,
) -> int:
    """Radius whose mean candidate count best matches the target.

    Parameters
    ----------
    distance_rows:
        One Hamming-distance vector per calibration query.
    target_mean_candidates:
        Desired average candidate-set size (the paper's O(100)).
    max_radius:
        Upper bound (the signature length).
    """
    if target_mean_candidates <= 0.0:
        raise ValueError("target candidate count must be positive")
    if max_radius < 0:
        raise ValueError("max radius must be non-negative")
    rows = [np.asarray(row, dtype=np.int64) for row in distance_rows]
    if not rows:
        raise ValueError("need at least one calibration query")
    best_radius, best_gap = 0, float("inf")
    for radius in range(max_radius + 1):
        mean_count = float(np.mean([(row <= radius).sum() for row in rows]))
        gap = abs(mean_count - target_mean_candidates)
        if gap < best_gap:
            best_radius, best_gap = radius, gap
        if mean_count >= target_mean_candidates and gap > best_gap:
            break  # counts grow monotonically; past the target the gap only grows
    return best_radius


def fixed_radius_candidates(distances: np.ndarray, radius: int) -> np.ndarray:
    """Indices within *radius*, in ascending index (priority-encoder) order."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return np.flatnonzero(np.asarray(distances, dtype=np.int64) <= radius)


def cap_candidates(candidates: np.ndarray, distances: np.ndarray, cap: int) -> np.ndarray:
    """Keep at most *cap* candidates, preferring smaller distances.

    The item buffer has finite capacity; when the threshold match returns
    more rows than the buffer holds, the closest candidates are retained
    (realised in hardware by stepping the reference current down).
    """
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    chosen = np.asarray(candidates, dtype=np.int64)
    if chosen.shape[0] <= cap:
        return chosen
    all_distances = np.asarray(distances, dtype=np.int64)
    order = np.argsort(all_distances[chosen], kind="stable")
    return np.sort(chosen[order[:cap]])
