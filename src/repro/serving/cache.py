"""Query-result cache: LRU eviction with optional TinyLFU admission,
charged against the hardware energy ledger.

A recommendation front-end sees heavily repeated queries (the Zipf head of
the user population), so a small result cache short-circuits the whole
filtering + ranking pipeline for hits.  The cache is modelled as one CMA
array holding ``rows_per_entry`` rows per cached query (item ids + scores),
so its traffic is charged with the Table II figures of merit:

* every ``lookup`` pays one associative ``cma_search`` probe;
* a hit additionally pays ``rows_per_entry`` CMA reads to stream the
  cached top-k out;
* an ``insert`` pays ``rows_per_entry`` CMA writes.

Because hits return the stored result object, the cache-hit path is
*functionally identical* to the miss path that populated it -- only the
charged cost differs (the acceptance property of the serving study).

Admission (TinyLFU)
-------------------
Plain LRU admits every miss, so one burst of one-off queries flushes the
Zipf head.  :class:`TinyLFUAdmission` guards the way in: a *doorkeeper*
set absorbs first-time keys, a :class:`CountMinSketch` estimates the
access frequency of everything seen more than once, and a full cache only
evicts its LRU victim when the arriving key is estimated *at least as
popular* as the victim.  Counters age by periodic halving (the "reset"
of the TinyLFU paper), so the estimate tracks the recent window rather
than all of history.  The filter is small SRAM-side metadata next to the
CMA array; its energy is negligible against the ``rows_per_entry`` CMA
rows it saves, so admission decisions are not charged to the ledger --
only the avoided/performed CMA writes are.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.circuits.foms import ArrayFoMs, TABLE_II
from repro.energy.accounting import Cost

__all__ = [
    "CountMinSketch",
    "TinyLFUAdmission",
    "ServingCache",
    "RepetitionAwareCache",
]

#: Large Mersenne prime for the sketch's universal hash family.
_PRIME = (1 << 61) - 1


class CountMinSketch:
    """Conservative frequency sketch over hashable keys.

    ``depth`` rows of ``width`` counters, indexed by a seeded universal
    hash family over the key's Python hash (deterministic for the int
    tuples serving keys are made of); ``estimate`` returns the row
    minimum, an upper bound on the true count.
    """

    def __init__(self, width: int = 1024, depth: int = 4, seed: int = 0):
        if width < 1 or depth < 1:
            raise ValueError(f"need width, depth >= 1, got {width}x{depth}")
        self.width = width
        self.depth = depth
        self._counters = np.zeros((depth, width), dtype=np.uint32)
        rng = np.random.default_rng(seed)
        # Odd multipliers + offsets: a multiply-shift universal family.
        self._scale = rng.integers(1, _PRIME, size=depth) | 1
        self._offset = rng.integers(0, _PRIME, size=depth)

    def _columns(self, key: Hashable) -> List[int]:
        # Arbitrary-precision Python ints: the scale*digest product runs to
        # ~2^122, which would silently wrap (and void the universal-family
        # collision bound) if done in int64.
        digest = hash(key) & ((1 << 61) - 1)
        return [
            (int(scale) * digest + int(offset)) % _PRIME % self.width
            for scale, offset in zip(self._scale, self._offset)
        ]

    def increment(self, key: Hashable) -> None:
        self._counters[np.arange(self.depth), self._columns(key)] += 1

    def estimate(self, key: Hashable) -> int:
        return int(self._counters[np.arange(self.depth), self._columns(key)].min())

    def halve(self) -> None:
        """Age every counter (the TinyLFU reset operation)."""
        self._counters >>= 1

    def clear(self) -> None:
        """Zero every counter (forget all history)."""
        self._counters.fill(0)


class TinyLFUAdmission:
    """Doorkeeper + count-min sketch admission filter (TinyLFU).

    ``record`` must be called on every cache access (hit or miss) so the
    sketch sees the true popularity stream; ``admit`` compares a
    candidate against the would-be eviction victim.
    """

    def __init__(
        self,
        sketch_width: int = 1024,
        sketch_depth: int = 4,
        sample_size: int = 4096,
        seed: int = 0,
    ):
        if sample_size < 1:
            raise ValueError(f"sample size must be >= 1, got {sample_size}")
        self.sketch = CountMinSketch(sketch_width, sketch_depth, seed=seed)
        self.sample_size = sample_size
        self._doorkeeper: Set[Hashable] = set()
        self._recorded = 0
        self.resets = 0

    def record(self, key: Hashable) -> None:
        """Count one access to ``key``."""
        if key in self._doorkeeper:
            # Second-or-later sighting in this window: promote to the sketch.
            self.sketch.increment(key)
        else:
            self._doorkeeper.add(key)
        self._recorded += 1
        if self._recorded >= self.sample_size:
            self.sketch.halve()
            self._doorkeeper.clear()
            self._recorded = 0
            self.resets += 1

    def estimate(self, key: Hashable) -> int:
        """Windowed access-frequency estimate for ``key``."""
        return self.sketch.estimate(key) + (1 if key in self._doorkeeper else 0)

    def admit(self, candidate: Hashable, victim: Hashable) -> bool:
        """Should ``candidate`` displace ``victim``?  Ties favour the
        newcomer (recency breaks frequency ties, as in W-TinyLFU)."""
        return self.estimate(candidate) >= self.estimate(victim)

    def reset(self) -> None:
        """Forget all popularity history (sketch and doorkeeper).

        Called when the cached world is wiped (a flush): letting the
        pre-wipe head keep its counts would let stale keys displace the
        new working set for a whole sample window.
        """
        self.sketch.clear()
        self._doorkeeper.clear()
        self._recorded = 0
        self.resets += 1

    def age(self) -> None:
        """One aging step (halve counts, clear the doorkeeper).

        A partial invalidation is softer than a flush: surviving keys'
        popularity is still meaningful, so the estimate decays instead
        of vanishing -- the same operation the periodic window reset
        performs, just triggered by the cache event.
        """
        self.sketch.halve()
        self._doorkeeper.clear()
        self._recorded = 0
        self.resets += 1


class ServingCache:
    """Bounded LRU map from query keys to served results.

    With an ``admission`` filter attached, a full cache consults TinyLFU
    before evicting: unpopular newcomers are rejected (counted in
    ``rejections``) and the resident entry survives.
    """

    def __init__(
        self,
        capacity: int,
        rows_per_entry: int = 10,
        foms: ArrayFoMs = TABLE_II,
        admission: Optional[TinyLFUAdmission] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if rows_per_entry < 1:
            raise ValueError(f"rows per entry must be >= 1, got {rows_per_entry}")
        self.capacity = capacity
        self.rows_per_entry = rows_per_entry
        self.foms = foms
        self.admission = admission
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def lookup(self, key: Hashable) -> Tuple[Optional[object], Cost]:
        """Probe the cache; returns (value or None, charged cost)."""
        if self.admission is not None:
            self.admission.record(key)
        probe = self.foms.cma_search
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            readout = self.foms.cma_read.repeated(self.rows_per_entry)
            return self._store[key], probe.then(readout)
        self.misses += 1
        return None, probe

    def insert(self, key: Hashable, value: object) -> Cost:
        """Store (or refresh) an entry, evicting the LRU one if full.

        A rejected insertion (admission filter sides with the victim)
        charges nothing: no CMA rows are written.
        """
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = value
            return self.foms.cma_write.repeated(self.rows_per_entry)
        if len(self._store) >= self.capacity:
            victim = next(iter(self._store))
            if self.admission is not None and not self.admission.admit(key, victim):
                self.rejections += 1
                return Cost()
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = value
        self.insertions += 1
        return self.foms.cma_write.repeated(self.rows_per_entry)

    def invalidate(
        self,
        item_ids: Iterable[int],
        items_of: Callable[[object], Iterable[int]] = lambda value: value[0],
    ) -> Tuple[int, Cost]:
        """Drop entries whose cached rows reference any of ``item_ids``.

        Online re-sharding relocates item rows; a cached result pins
        (item, score) rows by their physical location, so entries
        touching a moved range are dropped rather than chased (the
        conservative consistency policy of a CMA-resident cache).  Every
        resident entry pays one associative probe for the scan;
        ``items_of`` extracts the referenced item ids from a stored
        value (default: the session's ``(items, scores)`` layout).
        Returns (dropped entry count, charged cost).
        """
        moved = {int(item) for item in item_ids}
        if not moved or not self._store:
            return 0, Cost()
        scan = self.foms.cma_search.repeated(len(self._store))
        victims = [
            key
            for key, value in self._store.items()
            if not moved.isdisjoint(int(item) for item in items_of(value))
        ]
        for key in victims:
            del self._store[key]
        self.invalidations += len(victims)
        if victims and self.admission is not None:
            # Dropped keys keep their sketch counts; left alone they would
            # out-vote the (genuinely resident) working set at the next
            # full-cache admission ruling.  Age rather than reset: the
            # surviving entries' popularity is still real.
            self.admission.age()
        return len(victims), scan

    def flush(self) -> int:
        """Drop every resident entry (a fault-injected cache wipe).

        Models a cache-node restart: the store empties instantly (no
        charged cost -- the node lost power, nobody paid to erase it)
        and the session takes the resulting cold-start misses.  Counted
        under ``invalidations``; returns the number of entries dropped.
        """
        dropped = len(self._store)
        self._store.clear()
        self.invalidations += dropped
        if self.admission is not None:
            # The store is gone; the popularity history must go with it.
            # A stale sketch would let the pre-flush head block admission
            # of whatever working set arrives after the restart.
            self.admission.reset()
        return dropped

    def warm(self, entries) -> Cost:
        """Pre-populate from ``(key, value)`` pairs (most popular first).

        Stops once the cache is full: warm-up never evicts, it only fills
        cold capacity.  Returns the charged CMA write cost.
        """
        total = Cost()
        for key, value in entries:
            if len(self._store) >= self.capacity:
                break
            if key in self._store:
                continue
            total = total.then(self.insert(key, value))
        return total

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters snapshot for reports."""
        return {
            "capacity": self.capacity,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "rejections": self.rejections,
            "invalidations": self.invalidations,
        }


class RepetitionAwareCache(ServingCache):
    """A cache that only stores results predicted to recur.

    A dollar-billed cache charges for every put (and every provisioned
    row), so writing a one-off query's result is pure waste: the entry
    costs CMA fill rows *and* a put fee, then dies unread.  This layer
    keeps an online per-key recurrence profile (counts over a sliding
    window, aged by halving, like the TinyLFU sketch but exact -- the
    key population of a serving cache is small enough for a dict) and
    bypasses inserts of keys seen fewer than ``min_repeats`` times in
    the current window: the result is still served, it just is not
    cached.  Bypassed inserts charge nothing and are counted in
    ``bypassed``.

    ``recurrence_score`` exposes the profile to the hybrid execution
    model: the empirical repeat probability of a key, ``(n-1)/n`` for a
    key seen ``n`` times -- the maximum-likelihood estimate that the
    next occurrence is a repeat.
    """

    def __init__(
        self,
        capacity: int,
        rows_per_entry: int = 10,
        foms: ArrayFoMs = TABLE_II,
        admission: Optional[TinyLFUAdmission] = None,
        min_repeats: int = 2,
        window: int = 4096,
    ):
        super().__init__(capacity, rows_per_entry, foms, admission)
        if min_repeats < 1:
            raise ValueError(f"min repeats must be >= 1, got {min_repeats}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.min_repeats = min_repeats
        self.window = window
        self.bypassed = 0
        self._seen: Dict[Hashable, int] = {}
        self._window_accesses = 0

    def seen(self, key: Hashable) -> int:
        """Windowed access count of ``key``."""
        return self._seen.get(key, 0)

    def recurrence_score(self, key: Hashable) -> float:
        """Empirical repeat probability of ``key`` ((n-1)/n; 0 unseen)."""
        count = self.seen(key)
        return (count - 1) / count if count > 1 else 0.0

    def _track(self, key: Hashable) -> None:
        self._seen[key] = self._seen.get(key, 0) + 1
        self._window_accesses += 1
        if self._window_accesses >= self.window:
            # Age the profile: halve every count, drop the zeroes --
            # the estimate follows the recent window, not all history.
            self._seen = {
                key: count // 2
                for key, count in self._seen.items()
                if count // 2 > 0
            }
            self._window_accesses = 0

    def lookup(self, key: Hashable) -> Tuple[Optional[object], Cost]:
        self._track(key)
        return super().lookup(key)

    def insert(self, key: Hashable, value: object) -> Cost:
        """Store ``key`` only if its window count clears ``min_repeats``.

        Refreshes of already-resident keys always land (the rows exist;
        rewriting them is cheaper than invalidating).
        """
        if key not in self._store and self.seen(key) < self.min_repeats:
            self.bypassed += 1
            return Cost()
        return super().insert(key, value)

    def warm(self, entries) -> Cost:
        """Warm-up bypasses the recurrence filter: the eager planner
        already predicted these keys hot (that is why it precomputed
        them), so the profile is seeded instead of consulted."""
        total = Cost()
        for key, value in entries:
            if len(self._store) >= self.capacity:
                break
            if key in self._store:
                continue
            self._seen[key] = max(self.seen(key), self.min_repeats)
            total = total.then(super().insert(key, value))
        return total

    def flush(self) -> int:
        """A wipe loses the store *and* the recurrence history: the
        post-restart working set must earn its way back in."""
        self._seen.clear()
        self._window_accesses = 0
        return super().flush()

    def stats(self) -> Dict[str, float]:
        stats = super().stats()
        stats["bypassed"] = self.bypassed
        stats["tracked_keys"] = len(self._seen)
        return stats
