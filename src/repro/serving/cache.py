"""LRU query-result cache, charged against the hardware energy ledger.

A recommendation front-end sees heavily repeated queries (the Zipf head of
the user population), so a small result cache short-circuits the whole
filtering + ranking pipeline for hits.  The cache is modelled as one CMA
array holding ``rows_per_entry`` rows per cached query (item ids + scores),
so its traffic is charged with the Table II figures of merit:

* every ``lookup`` pays one associative ``cma_search`` probe;
* a hit additionally pays ``rows_per_entry`` CMA reads to stream the
  cached top-k out;
* an ``insert`` pays ``rows_per_entry`` CMA writes.

Because hits return the stored result object, the cache-hit path is
*functionally identical* to the miss path that populated it -- only the
charged cost differs (the acceptance property of the serving study).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.circuits.foms import ArrayFoMs, TABLE_II
from repro.energy.accounting import Cost

__all__ = ["ServingCache"]


class ServingCache:
    """Bounded LRU map from query keys to served results."""

    def __init__(
        self,
        capacity: int,
        rows_per_entry: int = 10,
        foms: ArrayFoMs = TABLE_II,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if rows_per_entry < 1:
            raise ValueError(f"rows per entry must be >= 1, got {rows_per_entry}")
        self.capacity = capacity
        self.rows_per_entry = rows_per_entry
        self.foms = foms
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def lookup(self, key: Hashable) -> Tuple[Optional[object], Cost]:
        """Probe the cache; returns (value or None, charged cost)."""
        probe = self.foms.cma_search
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            readout = self.foms.cma_read.repeated(self.rows_per_entry)
            return self._store[key], probe.then(readout)
        self.misses += 1
        return None, probe

    def insert(self, key: Hashable, value: object) -> Cost:
        """Store (or refresh) an entry, evicting the LRU one if full."""
        if key in self._store:
            self._store.move_to_end(key)
            self._store[key] = value
            return self.foms.cma_write.repeated(self.rows_per_entry)
        if len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = value
        self.insertions += 1
        return self.foms.cma_write.repeated(self.rows_per_entry)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters snapshot for reports."""
        return {
            "capacity": self.capacity,
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
        }
