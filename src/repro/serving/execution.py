"""Eager / lazy / hybrid recommendation execution models.

*When* a recommendation is computed is a cost decision.  The serving
stack so far always computed on demand; once engine time, cache puts
and storage are billed in dollars (:mod:`repro.serving.pricing`), three
execution strategies compete:

* **lazy** -- compute every recommendation on demand, at the peak-hour
  engine rate, and let the result cache absorb repeats.  Optimal when
  traffic barely repeats: nothing is precomputed, nothing is wasted;
* **eager** -- precompute the recommendation head off-peak: the users
  covering a target fraction of (predicted) traffic are served once
  before the run and their results warmed into the cache.  The
  precompute bill lands under "Warm-up" at the off-peak discount; the
  run then serves the head from cache at get-fee prices.  Optimal for
  heavy repetition with a deep off-peak valley, wasteful otherwise
  (precomputed one-offs die unread);
* **hybrid** -- precompute only the users whose *predicted recurrence*
  clears a threshold (the empirical repeat probability ``(n-1)/n``
  from a planning trace), serve the rest lazily through a
  :class:`~repro.serving.cache.RepetitionAwareCache` that refuses to
  cache one-off results.  It pays the warm bill only where repetition
  is proven, which is why the E-cost study pins it never worse in
  dollars than the worse of eager/lazy on the studied traces.

Models are strategies *over* :class:`~repro.serving.session.ServingSession`:
each ``execute`` builds a fresh session from the supplied factory (a
session accumulates ledger/cache state, so arms must not share one),
optionally warms it, then drives the same request trace through it.
The planning trace defaults to the run trace itself -- the simulator's
stand-in for "yesterday's traffic predicts today's", the assumption
every production precompute pipeline makes.

:func:`run_execution_model` dispatches by name, which is how the
:mod:`~repro.serving.workload_analyzer` recommendation becomes a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.serving.session import ServingResult, ServingSession
from repro.serving.traffic import Request
from repro.serving.workload_analyzer import hot_users, user_request_counts

__all__ = [
    "ExecutionOutcome",
    "LazyExecutionModel",
    "EagerExecutionModel",
    "HybridExecutionModel",
    "run_execution_model",
    "EXECUTION_MODELS",
]

SessionFactory = Callable[[], ServingSession]


@dataclass(frozen=True)
class ExecutionOutcome:
    """One execution model's run: the result plus what was precomputed."""

    model: str
    result: ServingResult
    precomputed_users: Tuple[int, ...] = ()

    @property
    def report(self):
        return self.result.report

    @property
    def dollars(self) -> Optional[float]:
        """Total dollar bill (None when the session ran unpriced)."""
        if self.result.price_ledger is None:
            return None
        return self.result.price_ledger.total()

    @property
    def energy_uj(self) -> float:
        return self.result.ledger.total().energy_uj

    def format_row(self) -> str:
        dollars = f"${self.dollars:.6f}" if self.dollars is not None else "$-"
        return (
            f"  {self.model:<7s} {dollars:>12s} "
            f"E={self.energy_uj:10.4f}uJ p95={self.report.p95_ms:8.3f}ms "
            f"hit={self.report.cache_hit_rate * 100.0:5.1f}% "
            f"warmed={len(self.precomputed_users)}"
        )


class LazyExecutionModel:
    """Compute on demand; the cache alone exploits repetition."""

    name = "lazy"

    def execute(
        self,
        session_factory: SessionFactory,
        requests: Sequence[Request],
        history: Optional[Sequence[Request]] = None,
    ) -> ExecutionOutcome:
        session = session_factory()
        return ExecutionOutcome(self.name, session.run(requests))


class EagerExecutionModel:
    """Precompute the traffic head off-peak, serve it from cache.

    ``traffic_fraction`` sets how much of the predicted traffic the
    precomputed head should cover (the knee of the Zipf curve decides
    how many users that takes).
    """

    name = "eager"

    def __init__(self, traffic_fraction: float = 0.75):
        if not 0.0 < traffic_fraction <= 1.0:
            raise ValueError(
                f"traffic fraction must be in (0, 1], got {traffic_fraction}"
            )
        self.traffic_fraction = traffic_fraction

    def plan(self, history: Sequence[Request]) -> List[int]:
        """The users to precompute, most traffic first."""
        return hot_users(history, self.traffic_fraction)

    def execute(
        self,
        session_factory: SessionFactory,
        requests: Sequence[Request],
        history: Optional[Sequence[Request]] = None,
    ) -> ExecutionOutcome:
        session = session_factory()
        planned = self.plan(requests if history is None else history)
        if session.cache is not None:
            # Never precompute past what the cache can hold: results
            # beyond capacity would be served (billed) and then dropped.
            planned = planned[: session.cache.capacity]
            if planned:
                session.warm(planned)
        else:
            planned = []
        return ExecutionOutcome(self.name, session.run(requests), tuple(planned))


class HybridExecutionModel:
    """Precompute only users whose predicted recurrence clears a threshold.

    A user requested ``n`` times in the planning trace has empirical
    repeat probability ``(n-1)/n``; only users at or above
    ``recurrence_threshold`` are precomputed (0.5 means "seen at least
    twice").  Pairs naturally with a
    :class:`~repro.serving.cache.RepetitionAwareCache` in the session
    factory, which extends the same principle to on-demand fills.
    """

    name = "hybrid"

    def __init__(self, recurrence_threshold: float = 0.5):
        if not 0.0 <= recurrence_threshold < 1.0:
            raise ValueError(
                "recurrence threshold must be in [0, 1), "
                f"got {recurrence_threshold}"
            )
        self.recurrence_threshold = recurrence_threshold

    def plan(self, history: Sequence[Request]) -> List[int]:
        """Users with proven recurrence, heaviest first (ties by id)."""
        counts = user_request_counts(history)
        recurring = [
            (user, count)
            for user, count in counts.items()
            if count > 1 and (count - 1) / count >= self.recurrence_threshold
        ]
        recurring.sort(key=lambda pair: (-pair[1], pair[0]))
        return [user for user, _ in recurring]

    def execute(
        self,
        session_factory: SessionFactory,
        requests: Sequence[Request],
        history: Optional[Sequence[Request]] = None,
    ) -> ExecutionOutcome:
        session = session_factory()
        planned = self.plan(requests if history is None else history)
        if session.cache is not None:
            planned = planned[: session.cache.capacity]
            if planned:
                session.warm(planned)
        else:
            planned = []
        return ExecutionOutcome(self.name, session.run(requests), tuple(planned))


#: Model name -> zero-argument default construction, the dispatch table
#: the analyzer recommendation indexes into.
EXECUTION_MODELS = {
    "lazy": LazyExecutionModel,
    "eager": EagerExecutionModel,
    "hybrid": HybridExecutionModel,
}


def run_execution_model(
    name: str,
    session_factory: SessionFactory,
    requests: Sequence[Request],
    history: Optional[Sequence[Request]] = None,
    **model_kwargs,
) -> ExecutionOutcome:
    """Build the named model with ``model_kwargs`` and execute it."""
    try:
        model_cls = EXECUTION_MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution model {name!r}; "
            f"choose from {sorted(EXECUTION_MODELS)}"
        ) from None
    return model_cls(**model_kwargs).execute(session_factory, requests, history)
