"""Dollar-cost accounting: a price ledger next to the energy ledger.

The energy :class:`~repro.energy.accounting.Ledger` answers the paper's
question -- how many joules did a request cost? -- but operators buy
capacity in dollars: engine time is rented by the hour, a managed result
cache bills every put/get plus provisioned storage, and off-peak compute
is discounted.  This module prices a serving run in dollars *from the
same cost rows the energy ledger already holds*: every energy row
``(category, Cost)`` maps deterministically to one dollar row
``(category, $)`` through :meth:`PriceBook.price_row`, so the dollar
plane inherits the bit-stability of the PR 6 cost-row templates -- a
seeded run prices to the same cents every time, and the vectorised and
scalar serve paths (which charge identical cost rows) price identically
too.

Row pricing rules
-----------------
* **Engine-time rows** ("Serve", "Retry", "Hedge", "Migration",
  "Warm-up", and any unrecognised category): the row's latency is
  engine occupancy, billed at the engine's $/hour rate.  Recovery work
  (the "Retry"/"Hedge" rows of PR 8) and state migration (PR 5) are
  thereby billed in dollars exactly as they were in joules -- same
  rows, different unit.  "Warm-up" rows are discounted by
  ``off_peak_discount``: precomputation is scheduled into the cheap
  valley of the diurnal curve.
* **Cache occupancy rows** ("Cache"): the CMA probe/readout/fill
  traffic occupies the same rented hardware, so the row is billed as
  engine time as well.  The *service-side* cache bill (what a managed
  cache would charge) is added separately by
  :func:`price_serving_run` from the cache's own counters: per-million
  get/put operation fees plus provisioned storage per entry-hour --
  the ``put_cost``/``get_cost``/``cost_per_gb`` decomposition of cloud
  cache pricing.

:func:`price_serving_run` is the one-call entry the serving session
uses; it returns a :class:`PriceLedger` whose API mirrors the energy
ledger (categories, per-category totals, breakdowns) so reports can
join the two planes row for row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.energy.accounting import Cost, Ledger

__all__ = [
    "PriceBook",
    "PriceLedger",
    "DEFAULT_PRICE_BOOK",
    "price_serving_run",
]

#: Hours per second -- the only unit conversion dollar pricing needs.
_HOURS_PER_S = 1.0 / 3600.0

#: Energy-ledger categories billed at the off-peak (discounted) engine
#: rate: precomputation is deliberately scheduled into the traffic
#: valley, which is the whole point of the eager execution model.
OFF_PEAK_CATEGORIES = frozenset({"Warm-up"})


@dataclass(frozen=True)
class PriceBook:
    """Per-resource dollar rates (the ``HW_PARAMETERS`` of the fleet).

    Defaults are order-of-magnitude cloud figures: an accelerator
    instance a few dollars per hour (the IMC fabric cheaper than the
    GPU, mirroring its energy advantage), a managed cache billing
    fractions of a dollar per million operations, storage per
    entry-hour.  Absolute values matter less than their ratios -- every
    study pins *relative* dollar claims.
    """

    #: $/hour for one IMC (CMA fabric) engine's occupied time.
    imc_per_hour: float = 1.10
    #: $/hour for one GPU engine's occupied time.
    gpu_per_hour: float = 2.95
    #: $ per million cache get operations (each lookup is one get).
    cache_get_per_million: float = 0.40
    #: $ per million cache put operations (each insertion is one put).
    cache_put_per_million: float = 4.00
    #: $ per cache entry per hour of provisioned capacity.
    storage_per_entry_hour: float = 2.0e-6
    #: Multiplier on engine time billed off-peak (``OFF_PEAK_CATEGORIES``).
    off_peak_discount: float = 0.6

    def __post_init__(self) -> None:
        for name in (
            "imc_per_hour",
            "gpu_per_hour",
            "cache_get_per_million",
            "cache_put_per_million",
            "storage_per_entry_hour",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.off_peak_discount <= 1.0:
            raise ValueError(
                f"off-peak discount must be in (0, 1], got {self.off_peak_discount}"
            )

    def engine_rate_per_hour(self, engine_kind: str) -> float:
        """$/hour of the named engine kind (``imc`` or ``gpu``)."""
        if engine_kind == "imc":
            return self.imc_per_hour
        if engine_kind == "gpu":
            return self.gpu_per_hour
        raise ValueError(f"unknown engine kind {engine_kind!r}")

    def price_row(self, category: str, cost: Cost, engine_kind: str = "imc") -> float:
        """Dollars for one energy-ledger row (the cost-row template rule).

        Pure in its inputs: the same row prices to the same dollars in
        any run, any batch composition -- dollar bit-stability reduces
        to cost-row bit-stability, which PR 6 pins.
        """
        rate = self.engine_rate_per_hour(engine_kind)
        if category in OFF_PEAK_CATEGORIES:
            rate *= self.off_peak_discount
        return cost.latency_s * _HOURS_PER_S * rate

    def cache_op_dollars(self, gets: int, puts: int) -> Tuple[float, float]:
        """(get $, put $) for the run's cache operation counts."""
        if gets < 0 or puts < 0:
            raise ValueError("operation counts must be non-negative")
        return (
            gets * self.cache_get_per_million * 1e-6,
            puts * self.cache_put_per_million * 1e-6,
        )

    def storage_dollars(self, entries: int, duration_s: float) -> float:
        """Provisioned-capacity bill: ``entries`` slots held ``duration_s``."""
        if entries < 0:
            raise ValueError("entry count must be non-negative")
        if duration_s < 0.0:
            raise ValueError("duration must be non-negative")
        return entries * duration_s * _HOURS_PER_S * self.storage_per_entry_hour


#: The repository-wide default book (used when a session is asked to
#: price itself without an explicit one).
DEFAULT_PRICE_BOOK = PriceBook()


@dataclass
class PriceLedger:
    """A categorised accumulator of dollar rows.

    The dollar twin of :class:`~repro.energy.accounting.Ledger`: rows
    are appended in charge order, category totals are plain sums, and
    the breakdown sums to 1.  Kept a separate type (not a ``Cost``
    ledger with dollars in the energy slot) so the two planes cannot be
    accidentally mixed.
    """

    name: str = "price"
    _rows: List[Tuple[str, float]] = field(default_factory=list)

    def charge(self, category: str, dollars: float) -> None:
        """Record ``dollars`` under ``category``."""
        if dollars < 0.0:
            raise ValueError(f"dollar charge must be non-negative, got {dollars}")
        self._rows.append((category, dollars))

    def extend(self, other: "PriceLedger") -> None:
        """Merge every row of ``other`` into this ledger."""
        self._rows.extend(other._rows)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def categories(self) -> List[str]:
        """Category names in first-seen order."""
        seen: Dict[str, None] = {}
        for category, _ in self._rows:
            seen.setdefault(category)
        return list(seen)

    def by_category(self) -> Dict[str, float]:
        """Summed dollars per category."""
        totals: Dict[str, float] = {}
        for category, dollars in self._rows:
            totals[category] = totals.get(category, 0.0) + dollars
        return totals

    def total(self) -> float:
        """Sum of every row, in charge order (deterministic)."""
        total = 0.0
        for _, dollars in self._rows:
            total += dollars
        return total

    def breakdown(self) -> Dict[str, float]:
        """Fraction of the total per category (sums to 1.0)."""
        totals = self.by_category()
        grand = sum(totals.values())
        if grand == 0.0:
            return {category: 0.0 for category in totals}
        return {category: dollars / grand for category, dollars in totals.items()}

    def format_rows(self) -> str:
        """Human-readable per-category breakdown."""
        totals = self.by_category()
        grand = self.total()
        lines = [f"  {self.name}: ${grand:.6f} total"]
        for category, dollars in totals.items():
            share = dollars / grand if grand else 0.0
            lines.append(
                f"    {category:<14s} ${dollars:12.8f}  ({share * 100.0:5.1f}%)"
            )
        return "\n".join(lines)


def price_serving_run(
    ledger: Ledger,
    book: Optional[PriceBook] = None,
    *,
    engine_kind: str = "imc",
    cache_stats: Optional[Dict[str, float]] = None,
    duration_s: float = 0.0,
    name: str = "price",
) -> PriceLedger:
    """Price one serving run's energy ledger (plus cache service fees).

    ``ledger`` is the session's energy ledger; every row is priced by
    :meth:`PriceBook.price_row` -- so Retry/Hedge/Migration recovery
    work is billed in dollars through exactly the rows PRs 5 and 8
    already charge in joules.  ``cache_stats`` (the dict from
    :meth:`~repro.serving.cache.ServingCache.stats`) adds the managed
    cache's service bill: per-operation get/put fees from the hit/miss
    and insertion counters, and provisioned storage for ``capacity``
    entries held over ``duration_s`` (the run's makespan).
    """
    book = book or DEFAULT_PRICE_BOOK
    priced = PriceLedger(name=name)
    for category, cost in ledger:
        priced.charge(category, book.price_row(category, cost, engine_kind))
    if cache_stats is not None:
        gets = int(cache_stats.get("hits", 0)) + int(cache_stats.get("misses", 0))
        puts = int(cache_stats.get("insertions", 0))
        get_dollars, put_dollars = book.cache_op_dollars(gets, puts)
        priced.charge("Cache-get", get_dollars)
        priced.charge("Cache-put", put_dollars)
        priced.charge(
            "Cache-storage",
            book.storage_dollars(int(cache_stats.get("capacity", 0)), duration_s),
        )
    return priced
