"""Self-healing serving: timeouts, retries, hedging, circuit breakers.

:mod:`repro.serving.faults` schedules the failures; this module decides
what the fleet does about them.  A :class:`FaultContext` binds one
:class:`~repro.serving.faults.FaultInjector` to an optional
:class:`ResilienceConfig` and is *attached* through the engine tree
(:func:`attach_faults`, mirroring
:func:`repro.obs.telemetry.attach_telemetry`): every leaf engine gains a
failure hook that consults the injector at each serve attempt, and every
router (:class:`~repro.serving.shard.ReplicaGroup`,
:class:`~repro.serving.shard.ShardedEngine`) gains the context it needs
to recover:

* **timeouts + retries with backoff** -- a crashed replica is detected
  after a timeout (a multiple of its expected sub-batch latency); the
  sub-batch retries on the least-loaded healthy peer (failover, no
  backoff) or, when no peer exists, on the same replica after
  exponential backoff.  Retry attempts are re-billed to the session
  ledger under a ``"Retry"`` category -- recovery work is real energy;
* **hedging** -- a straggling (but correct) sub-batch triggers a hedge
  on a healthy peer after a delay; the first finisher wins (results are
  bit-identical by the replica-construction invariant) and both
  attempts' energy is billed (hedges under ``"Hedge"``);
* **circuit breakers** -- per-replica closed/open/half-open state
  machines: repeated failures open the breaker, routing skips open
  breakers (failover), and after a cooldown a limited number of
  half-open probes test recovery -- a probe success re-closes, a probe
  failure re-opens;
* **partial scatter-gather** -- handled in
  :class:`~repro.serving.shard.ShardedEngine`: when a whole shard is
  dark past its deadline the gather returns top-k from the surviving
  shards, marks the results partial (served degraded, like the
  admission controller's reduced top-k) and records the recall loss
  instead of failing the request.

Everything here is deterministic: no randomness is drawn, breakers and
accumulators iterate in insertion order, and with an *empty* fault plan
every hook and breaker call is a no-op that leaves recommendations,
ledgers and telemetry byte-identical to an unwrapped fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.pipeline import QueryResult
from repro.energy.accounting import Cost, Ledger
from repro.serving.faults import ERROR, FaultError, FaultInjector, FaultPlan

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ResilienceConfig",
    "CircuitBreaker",
    "FaultContext",
    "attach_faults",
    "failed_query_result",
]

#: Breaker states (the classic three-state machine).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the self-healing layer (absence = resilience off).

    Timeouts and hedges are sized relative to a replica's *expected*
    per-query latency (the routing EWMA), falling back to
    ``default_timeout_s`` before any observation exists.
    """

    #: Attempt timeout = ``timeout_factor`` x expected sub-batch latency.
    timeout_factor: float = 4.0
    #: Per-query latency assumed before a replica has ever served.
    default_timeout_s: float = 0.005
    #: Retry attempts per failed sub-batch (beyond the first attempt).
    max_retries: int = 2
    #: Backoff before a same-replica retry (no healthy peer available).
    backoff_base_s: float = 0.0005
    backoff_multiplier: float = 2.0
    #: Total retry attempts one run may spend (the retry budget).
    retry_budget: int = 10_000
    #: Hedge when an attempt ran ``hedge_factor`` x its expectation...
    hedge_factor: float = 3.0
    #: ...modelled as fired after ``hedge_delay_factor`` x expectation.
    hedge_delay_factor: float = 1.5
    #: Consecutive failures that open a replica's breaker.
    breaker_failure_threshold: int = 2
    #: Seconds an open breaker waits before letting probes through.
    #: Sized to the simulator's timescale (micro-batches serve in
    #: ~0.1-1ms): long enough to skip a few doomed attempts, short
    #: enough that a recovered replica rejoins within a handful of
    #: batches -- a mis-sized cooldown (say 0.05s against a 5ms fault)
    #: leaves the breaker open for the rest of the run.
    breaker_cooldown_s: float = 0.002
    #: Concurrent probe attempts allowed while half-open.
    breaker_half_open_probes: int = 1
    #: Whole-shard deadline = ``shard_deadline_factor`` x expectation.
    shard_deadline_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.timeout_factor <= 0.0 or self.shard_deadline_factor <= 0.0:
            raise ValueError("timeout/deadline factors must be positive")
        if self.default_timeout_s <= 0.0:
            raise ValueError(
                f"default timeout must be positive, got {self.default_timeout_s}"
            )
        if self.max_retries < 0 or self.retry_budget < 0:
            raise ValueError("retry counts cannot be negative")
        if self.backoff_base_s < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.hedge_factor <= 1.0 or self.hedge_delay_factor <= 0.0:
            raise ValueError("hedge factors must be > 1 (trigger) and > 0 (delay)")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker failure threshold must be >= 1")
        if self.breaker_cooldown_s < 0.0:
            raise ValueError("breaker cooldown must be >= 0")
        if self.breaker_half_open_probes < 1:
            raise ValueError("half-open probe limit must be >= 1")

    def attempt_timeout_s(
        self, expected_query_s: Optional[float], num_queries: int
    ) -> float:
        """How long a caller waits before declaring an attempt dead."""
        per_query = expected_query_s or self.default_timeout_s
        return self.timeout_factor * per_query * max(1, num_queries)

    def shard_deadline_s(
        self, expected_query_s: Optional[float], num_queries: int
    ) -> float:
        """How long the gather waits on a dark shard before going partial."""
        per_query = expected_query_s or self.default_timeout_s
        return self.shard_deadline_factor * per_query * max(1, num_queries)


class CircuitBreaker:
    """Per-replica closed/open/half-open failure gate.

    Deterministic and allocation-light: state moves only inside
    :meth:`allow` / :meth:`record_success` / :meth:`record_failure`,
    every transition is appended to :attr:`transitions` (and reported
    through the optional callback), and no clock is read -- callers
    pass simulation time in.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        on_transition: Optional[Callable[[float, str, str], None]] = None,
    ):
        self.config = config
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = 0.0
        self.probes_in_flight = 0
        #: (time_s, old_state, new_state) per transition, in order.
        self.transitions: List[Tuple[float, str, str]] = []
        self._on_transition = on_transition

    def _move(self, now_s: float, new_state: str) -> None:
        old_state = self.state
        self.state = new_state
        self.transitions.append((now_s, old_state, new_state))
        if self._on_transition is not None:
            self._on_transition(now_s, old_state, new_state)

    def allow(self, now_s: float) -> bool:
        """May a request be routed to this replica at ``now_s``?

        An open breaker whose cooldown elapsed moves to half-open; while
        half-open, requests pass only while probe slots remain.  The
        check is *non-consuming* -- routing may probe many candidates
        before picking one -- so callers claim the slot with
        :meth:`take_probe` when an attempt actually starts, and the
        matching ``record_success`` / ``record_failure`` releases it.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_s - self.opened_at_s < self.config.breaker_cooldown_s:
                return False
            self.probes_in_flight = 0
            self._move(now_s, HALF_OPEN)
        return self.probes_in_flight < self.config.breaker_half_open_probes

    def take_probe(self) -> None:
        """Claim a half-open probe slot: one attempt is now in flight.

        A no-op outside half-open (closed breakers don't meter attempts).
        Routing that merely *checked* ``allow`` must not call this --
        a claimed-but-never-attempted slot would lock the replica out
        of recovery forever.
        """
        if self.state == HALF_OPEN:
            self.probes_in_flight += 1

    def record_success(self, now_s: float) -> None:
        """One attempt on this replica finished cleanly."""
        if self.state == HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._move(now_s, CLOSED)
        self.consecutive_failures = 0

    def record_failure(self, now_s: float) -> None:
        """One attempt on this replica failed (fault or timeout)."""
        if self.state == HALF_OPEN:
            # The health probe failed: straight back to open, cooldown
            # restarts from the probe's failure time.
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self.opened_at_s = now_s
            self._move(now_s, OPEN)
            return
        self.consecutive_failures += 1
        if (
            self.state == CLOSED
            and self.consecutive_failures
            >= self.config.breaker_failure_threshold
        ):
            self.opened_at_s = now_s
            self._move(now_s, OPEN)


#: Counter keys, fixed up front so every stats() dict iterates in the
#: same order regardless of which faults actually fired.
_COUNTER_KEYS = (
    "crash_hits",
    "error_hits",
    "straggled_batches",
    "retries",
    "failovers",
    "hedges",
    "failed_queries",
    "partial_queries",
    "lost_entries",
    "breaker_opens",
    "breaker_half_opens",
    "breaker_closes",
    "cache_flushes",
    "flushed_entries",
)


class FaultContext:
    """One run's fault machinery: injector + resilience + bookkeeping.

    Sessions build one per run and attach it through the engine tree;
    routers read routing state from it (breakers, the current attempt
    time) and write recovery accounting into it (retry/hedge costs,
    counters, telemetry events).  All mutation is deterministic -- the
    context draws no randomness and iterates only insertion-ordered
    containers.
    """

    def __init__(
        self,
        faults,
        resilience: Optional[ResilienceConfig] = None,
        telemetry=None,
        process: str = "serve",
    ):
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        if not isinstance(faults, FaultInjector):
            raise TypeError(
                f"faults must be a FaultPlan or FaultInjector, got {type(faults)!r}"
            )
        self.injector = faults
        self.resilience = resilience
        self.telemetry = telemetry
        self.process = process
        #: Simulation time of the serve attempt currently in flight;
        #: routers set it before every engine call so the failure hooks
        #: can place the attempt inside (or outside) fault windows.
        self.attempt_time_s = 0.0
        self.breakers: Dict[Tuple[int, int], CircuitBreaker] = {}
        self.retries_used = 0
        self.counters: Dict[str, int] = {key: 0 for key in _COUNTER_KEYS}
        #: Sum over partial queries of (dark shards / total shards) --
        #: the expected recall lost to partial gathers.
        self.recall_loss = 0.0
        self._pending_retry = Cost()
        self._pending_hedge = Cost()
        windows = [
            event
            for event in self.injector.plan.events
            if event.duration_s > 0.0
        ]
        self._begin_queue = windows  # plan events are start-sorted
        self._end_queue = sorted(windows, key=lambda event: event.end_s)
        self._begin_cursor = 0
        self._end_cursor = 0
        self._event_counter = None  # lazy: zero-fault runs export nothing

    # -- routing state --------------------------------------------------

    def begin_round(self, now_s: float) -> None:
        """Anchor the next dispatch round at simulation time ``now_s``."""
        self.attempt_time_s = now_s

    def breaker(self, shard: int, replica: int) -> CircuitBreaker:
        """The (lazily created) breaker guarding one replica site."""
        site = (shard, replica)
        breaker = self.breakers.get(site)
        if breaker is None:
            config = self.resilience or ResilienceConfig()
            breaker = CircuitBreaker(
                config,
                on_transition=lambda now_s, old, new, _site=site: (
                    self._breaker_event(_site, now_s, old, new)
                ),
            )
            self.breakers[site] = breaker
        return breaker

    def retry_budget_left(self) -> bool:
        return (
            self.resilience is not None
            and self.retries_used < self.resilience.retry_budget
        )

    # -- recovery-cost accumulators -------------------------------------

    def add_retry_cost(self, cost: Cost) -> None:
        self._pending_retry = self._pending_retry.then(cost)

    def add_hedge_cost(self, cost: Cost) -> None:
        self._pending_hedge = self._pending_hedge.then(cost)

    def take_retry_cost(self) -> Cost:
        cost = self._pending_retry
        self._pending_retry = Cost()
        return cost

    def take_hedge_cost(self) -> Cost:
        cost = self._pending_hedge
        self._pending_hedge = Cost()
        return cost

    # -- telemetry ------------------------------------------------------

    def record_event(self, name: str, time_s: float, **attrs: object) -> None:
        """Emit one fault-plane event (tracer instant + metrics counter).

        Families are created lazily on the first real event, so a run
        whose plan never fires exports byte-identical telemetry to a
        run with no fault plane at all.
        """
        telemetry = self.telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.tracer.instant(
            name, time_s, category="fault", track="faults", **attrs
        )
        if self._event_counter is None:
            self._event_counter = telemetry.metrics.counter(
                "repro_fault_events_total",
                "Fault-plane events (faults, retries, hedges, breakers).",
            )
        self._event_counter.inc(process=self.process, event=name)

    def _breaker_event(
        self, site: Tuple[int, int], now_s: float, old: str, new: str
    ) -> None:
        key = {
            OPEN: "breaker_opens",
            HALF_OPEN: "breaker_half_opens",
            CLOSED: "breaker_closes",
        }[new]
        self.counters[key] += 1
        self.record_event(
            f"breaker-{new}",
            now_s,
            shard=site[0],
            replica=site[1],
            previous=old,
        )

    def observe_progress(self, now_s: float) -> None:
        """Emit begin/end instants for fault windows the clock passed.

        The scheduler calls this as its free-time clock advances, so the
        trace shows every scheduled window opening and closing at its
        own simulation timestamps even when no batch sampled it.
        """
        while (
            self._begin_cursor < len(self._begin_queue)
            and self._begin_queue[self._begin_cursor].start_s <= now_s
        ):
            event = self._begin_queue[self._begin_cursor]
            self._begin_cursor += 1
            self.record_event(
                "fault-begin",
                event.start_s,
                kind=event.kind,
                shard=event.shard,
                replica=event.replica,
                severity=event.severity,
            )
        while (
            self._end_cursor < len(self._end_queue)
            and self._end_queue[self._end_cursor].end_s <= now_s
        ):
            event = self._end_queue[self._end_cursor]
            self._end_cursor += 1
            self.record_event(
                "fault-end",
                event.end_s,
                kind=event.kind,
                shard=event.shard,
                replica=event.replica,
            )

    # -- reporting ------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Deterministic snapshot of the run's fault/recovery accounting."""
        return {
            "counters": dict(self.counters),
            "retries_used": self.retries_used,
            "recall_loss": self.recall_loss,
            "mttr_s": self.injector.mttr_s(),
            "breakers": {
                f"shard{site[0]}/replica{site[1]}": breaker.state
                for site, breaker in sorted(self.breakers.items())
            },
        }


def failed_query_result() -> QueryResult:
    """A fresh empty result standing in for a query the fleet dropped."""
    return QueryResult(
        items=[],
        candidate_count=0,
        cost=Cost(),
        ledger=Ledger(name="failed-query"),
        scores=[],
        failed=True,
    )


def _make_hook(ctx: FaultContext, shard: int, replica: int):
    """The failure hook planted on one leaf engine.

    Called by :meth:`~repro.core.pipeline._EngineBase.serve_batch` with
    the computed batch cost; raises :class:`FaultError` when the attempt
    lands in a crash/outage/error window, inflates latency inside a
    straggler window, and otherwise returns the cost object unchanged
    (the bit-identity fast path).
    """
    injector = ctx.injector

    def hook(cost: Cost, num_queries: int) -> Cost:
        now_s = ctx.attempt_time_s
        down = injector.down_at(shard, replica, now_s)
        if down is not None:
            raise FaultError(down.kind, (shard, replica), Cost(), down)
        error = injector.error_at(shard, replica, now_s)
        if error is not None:
            raise FaultError(ERROR, (shard, replica), cost, error)
        multiplier = injector.latency_multiplier(shard, replica, now_s)
        if multiplier != 1.0:
            return Cost(
                energy_pj=cost.energy_pj, latency_ns=cost.latency_ns * multiplier
            )
        return cost

    return hook


def attach_faults(engine, ctx: Optional[FaultContext]) -> None:
    """Plant a fault context across an engine tree (None detaches).

    Mirrors :func:`repro.obs.telemetry.attach_telemetry`: the tree is
    walked duck-typed (``.shards`` on scatter-gather routers,
    ``.replicas`` on replica groups), routers get the context itself
    (as ``_faults``, plus their shard index as ``_fault_site``) and
    every leaf engine gets a per-site failure hook.  Sessions re-invoke
    this after every live scale event, exactly like telemetry.
    """
    if engine is None:
        return
    shards = getattr(engine, "shards", None)
    if shards is not None:
        engine._faults = ctx
        for shard_index, shard in enumerate(shards):
            _attach_shard(shard, ctx, shard_index)
    else:
        _attach_shard(engine, ctx, 0)


def _attach_shard(node, ctx: Optional[FaultContext], shard_index: int) -> None:
    replicas = getattr(node, "replicas", None)
    if replicas is not None:
        node._faults = ctx
        node._fault_site = shard_index
        for replica_index, replica in enumerate(replicas):
            _plant_hook(replica, ctx, shard_index, replica_index)
    else:
        _plant_hook(node, ctx, shard_index, 0)


def _plant_hook(
    engine, ctx: Optional[FaultContext], shard: int, replica: int
) -> None:
    engine._fault_site = (shard, replica)
    engine._fault_hook = None if ctx is None else _make_hook(ctx, shard, replica)
