"""Workload analyzer: traffic-trace features that pick an execution model.

Whether precomputing recommendations pays off is a property of the
*traffic*, not of the engine: a spiky trace with a deep off-peak valley
and a heavily repeated user head is exactly where eager precomputation
(serve the head once, off-peak, cache it) beats on-demand serving --
while a flat, one-off-heavy trace makes precomputation pure waste.
This module extracts those decision features from a timestamped request
trace:

* **spikiness** -- peak-to-mean ratio of the binned arrival rate, and
  the coefficient of variation of the per-bin rates;
* **burstiness** -- index of dispersion of per-bin counts
  (variance/mean; 1.0 for Poisson, >1 for bursty/MMPP arrivals);
* **repetition** -- how much of the traffic is repeated requesters:
  ``1 - unique_users/num_requests``, plus the traffic share of the top
  decile of users (the cacheable Zipf head);
* **hourly elasticity** -- the relative depth of the rate valley,
  ``(peak - trough) / peak``: how much cheap off-peak capacity a
  diurnal curve leaves for precomputation.

:func:`recommend_execution_model` turns the features into a choice
among the three execution models of :mod:`repro.serving.execution`:
``eager`` when the head repeats and the valley is deep, ``lazy`` when
repetition cannot pay for precomputation, ``hybrid`` in between.

Everything here is pure arithmetic over the trace -- deterministic,
no RNG, no engine in the loop -- so the analysis of a seeded trace is
bit-stable, as the E-cost pins require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.serving.traffic import Request

__all__ = [
    "WorkloadFeatures",
    "analyze_trace",
    "recommend_execution_model",
    "user_request_counts",
    "hot_users",
]


@dataclass(frozen=True)
class WorkloadFeatures:
    """Decision features of one traffic trace."""

    num_requests: int
    duration_s: float
    mean_qps: float
    #: Peak binned rate over the mean rate (>= 1; 1 = perfectly flat).
    peak_to_mean: float
    #: Coefficient of variation of the per-bin rates.
    rate_cv: float
    #: Index of dispersion of per-bin counts (~1 Poisson, >1 bursty).
    burstiness: float
    #: Fraction of requests that came from an already-seen user.
    repetition_ratio: float
    #: Traffic share of the most active 10% of requesting users.
    top_decile_share: float
    #: Relative valley depth of the binned rate: (peak - trough) / peak.
    hourly_elasticity: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_requests": self.num_requests,
            "duration_s": self.duration_s,
            "mean_qps": self.mean_qps,
            "peak_to_mean": self.peak_to_mean,
            "rate_cv": self.rate_cv,
            "burstiness": self.burstiness,
            "repetition_ratio": self.repetition_ratio,
            "top_decile_share": self.top_decile_share,
            "hourly_elasticity": self.hourly_elasticity,
        }

    def format_row(self) -> str:
        return (
            f"  {self.num_requests} req over {self.duration_s:.4f}s "
            f"({self.mean_qps:,.0f} q/s): peak/mean={self.peak_to_mean:.2f} "
            f"cv={self.rate_cv:.2f} burst={self.burstiness:.2f} "
            f"rep={self.repetition_ratio:.2f} "
            f"top10%={self.top_decile_share:.2f} "
            f"elastic={self.hourly_elasticity:.2f}"
        )


def user_request_counts(requests: Sequence[Request]) -> Dict[int, int]:
    """Requests per user, insertion-ordered by first appearance."""
    counts: Dict[int, int] = {}
    for request in requests:
        counts[request.user] = counts.get(request.user, 0) + 1
    return counts


def hot_users(
    requests: Sequence[Request], traffic_fraction: float = 0.5
) -> List[int]:
    """The smallest user set covering ``traffic_fraction`` of the trace.

    Users sorted by descending request count (count ties broken by user
    id for determinism); returns the prefix whose cumulative traffic
    share first reaches the target -- the precompute candidate list of
    the eager execution model.
    """
    if not 0.0 < traffic_fraction <= 1.0:
        raise ValueError(
            f"traffic fraction must be in (0, 1], got {traffic_fraction}"
        )
    counts = user_request_counts(requests)
    ranked = sorted(counts.items(), key=lambda pair: (-pair[1], pair[0]))
    target = traffic_fraction * len(requests)
    chosen: List[int] = []
    covered = 0
    for user, count in ranked:
        if covered >= target:
            break
        chosen.append(user)
        covered += count
    return chosen


def _binned_counts(
    requests: Sequence[Request], bins: int
) -> Tuple[np.ndarray, float]:
    """(per-bin request counts, bin width in seconds) over the trace span."""
    arrivals = np.array([request.arrival_s for request in requests])
    span = float(arrivals.max() - arrivals.min())
    if span <= 0.0:
        # One instant of traffic: a single bin holding everything.
        return np.array([len(requests)], dtype=np.float64), 0.0
    edges = np.linspace(arrivals.min(), arrivals.max(), bins + 1)
    counts, _ = np.histogram(arrivals, bins=edges)
    return counts.astype(np.float64), span / bins


def analyze_trace(requests: Sequence[Request], bins: int = 24) -> WorkloadFeatures:
    """Extract :class:`WorkloadFeatures` from a timestamped trace.

    ``bins`` is the resolution of the rate profile (the "hours" of the
    simulated day -- arbitrary wall-clock scale, since the simulator's
    diurnal period is itself scaled down).
    """
    if not requests:
        raise ValueError("cannot analyse an empty trace")
    if bins < 1:
        raise ValueError(f"need at least one bin, got {bins}")
    counts, bin_s = _binned_counts(requests, bins)
    arrivals = np.array([request.arrival_s for request in requests])
    duration_s = float(arrivals.max() - arrivals.min())
    mean_qps = (len(requests) - 1) / duration_s if duration_s > 0.0 else 0.0
    mean_count = counts.mean()
    peak = float(counts.max())
    trough = float(counts.min())
    peak_to_mean = peak / mean_count if mean_count > 0.0 else 1.0
    rate_cv = float(counts.std() / mean_count) if mean_count > 0.0 else 0.0
    burstiness = float(counts.var() / mean_count) if mean_count > 0.0 else 0.0
    hourly_elasticity = (peak - trough) / peak if peak > 0.0 else 0.0

    user_counts = user_request_counts(requests)
    repetition_ratio = 1.0 - len(user_counts) / len(requests)
    ranked = sorted(user_counts.values(), reverse=True)
    decile = max(1, len(ranked) // 10)
    top_decile_share = sum(ranked[:decile]) / len(requests)
    return WorkloadFeatures(
        num_requests=len(requests),
        duration_s=duration_s,
        mean_qps=mean_qps,
        peak_to_mean=peak_to_mean,
        rate_cv=rate_cv,
        burstiness=burstiness,
        repetition_ratio=repetition_ratio,
        top_decile_share=top_decile_share,
        hourly_elasticity=hourly_elasticity,
    )


def recommend_execution_model(
    features: WorkloadFeatures,
    *,
    min_repetition: float = 0.2,
    eager_repetition: float = 0.5,
    eager_elasticity: float = 0.4,
    max_burstiness: float = 4.0,
) -> str:
    """Pick ``eager`` / ``lazy`` / ``hybrid`` from the trace features.

    * repetition below ``min_repetition``: precomputed results would
      mostly never be requested again -- ``lazy``;
    * repetition above ``eager_repetition``, a valley deeper than
      ``eager_elasticity`` *and* dispersion at most ``max_burstiness``:
      the head is cacheable, the rate curve is predictable, and there
      is cheap off-peak capacity to precompute the whole head in --
      ``eager``;
    * anything between -- including a repetitive but MMPP-bursty trace,
      whose spikes cannot be scheduled around -- precompute only the
      users predicted to recur: ``hybrid``.
    """
    if features.repetition_ratio < min_repetition:
        return "lazy"
    if (
        features.repetition_ratio >= eager_repetition
        and features.hourly_elasticity >= eager_elasticity
        and features.burstiness <= max_burstiness
    ):
        return "eager"
    return "hybrid"
