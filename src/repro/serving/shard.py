"""Shard router: partition the item corpus across replicated fabrics.

A single iMARS fabric (or GPU) ranks candidates *serially*, so the
per-candidate ranking loop dominates query latency.  Sharding splits the
item corpus round-robin across N engines; every query fans out to all
shards in parallel (scatter), each shard runs NNS + ranking over its own
slice with a proportionally smaller candidate budget, and the router
merges the per-shard top-k by CTR score (gather).

Sharding cuts *per-query* latency but not queueing: one engine per slice
is still a serial resource.  :class:`ReplicaGroup` adds the throughput
axis -- R functionally identical copies of one shard's engine, with each
dispatched micro-batch split across replicas by least outstanding work,
so the group's occupancy per batch approaches 1/R of a single replica's.
Replicas share the slice *and* the construction seed, so the group
returns bit-identical recommendations regardless of R.

A :class:`ReplicaGroup` may also be *heterogeneous*: IMC replicas next
to GPU replicas of the same deployed model
(:class:`~repro.core.pipeline.GPUSpilloverEngine`, bit-identical
recommendations by construction).  With a ``p95_target_s`` the group
routes cost-aware: queries fill the cheapest replica (by observed energy
per query) until its outstanding work this dispatch round threatens the
latency target, and only the overflow spills to the fast-but-hungry
backend -- so the energy bill stays near the IMC-only floor while the
tail stays under the contract.

Cost semantics follow the repo's composition algebra: shards and
replicas run on disjoint hardware, so their batch costs compose with
:meth:`Cost.alongside` (energy adds, latency is the slowest member), and
the merge is charged through the platform's own top-k model
(:meth:`~repro.core.pipeline._EngineBase.merge_cost`).

Online re-sharding (:func:`migration_plan`, :func:`migration_cost`)
models what a *live* scale event pays: every item row whose round-robin
home changes streams its int8 embedding words and LSH signature into the
new shard's arrays, and each added replica copies its shard's full
slice.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.foms import ArrayFoMs, TABLE_II
from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import (
    BatchResult,
    GPUReferenceEngine,
    GPUSpilloverEngine,
    IMARSEngine,
    QueryResult,
    ServeQuery,
)
from repro.energy.accounting import Cost, Ledger
from repro.gpu.device import GPUDeviceModel, GTX1080
from repro.serving.faults import ERROR, FaultError
from repro.serving.resilience import failed_query_result

__all__ = [
    "partition_corpus",
    "migration_plan",
    "migration_cost",
    "plan_scale_migration",
    "ReplicaGroup",
    "ShardedEngine",
    "make_sharded_engine",
]


def _member_merge_cost(members: Sequence[object], num_entries: int) -> Cost:
    """The platform top-k merge model shared by a router's members.

    Scatter-gather routers (:class:`ShardedEngine`) and replica routers
    (:class:`ReplicaGroup`) both charge the merge through the platform of
    their *first* member -- the primary engine whose front-end owns the
    gather in a heterogeneous group.  One helper, one formula: replicated
    and unreplicated merges charge identical energy by construction.
    """
    return members[0].merge_cost(num_entries)


def partition_corpus(num_items: int, num_shards: int) -> List[np.ndarray]:
    """Round-robin split of ``num_items`` global ids into ``num_shards``.

    Round-robin (rather than contiguous ranges) keeps shards balanced even
    when item ids correlate with popularity or insertion time.
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    if not 1 <= num_shards <= num_items:
        raise ValueError(
            f"shard count must be in [1, {num_items}], got {num_shards}"
        )
    ids = np.arange(num_items, dtype=np.int64)
    return [ids[shard::num_shards] for shard in range(num_shards)]


class ReplicaGroup:
    """R engines over one corpus slice, load-balanced per dispatch round.

    Homogeneous mode (``p95_target_s=None``): each ``serve_batch`` round
    assigns queries greedily to the replica with the least outstanding
    work -- cumulative busy seconds from past assignments plus the
    estimated work already assigned this round
    (:attr:`~repro.core.pipeline._EngineBase.expected_query_latency_s`,
    falling back to uniform estimates before any replica has served).

    Spillover mode (``p95_target_s`` set): the group may mix engine
    kinds (IMC primaries plus :class:`~repro.core.pipeline.GPUSpilloverEngine`
    overflow replicas serving bit-identical recommendations).  Replicas
    are ranked cheapest-first by their observed energy per query
    (:attr:`~repro.core.pipeline._EngineBase.expected_query_energy_pj`;
    list order -- cheapest first -- breaks the tie until every replica
    has served).  Each query goes to the cheapest replica whose work
    already queued *this round* leaves its projected completion inside
    ``spill_headroom * p95_target_s``; only the overflow spills to the
    next-cheapest backend.  When every replica is saturated the router
    degenerates to least-projected-completion levelling -- the SLO is
    lost either way, so it drains as fast as possible.  Spilled queries
    are counted in :attr:`spilled`.

    In both modes the per-replica sub-batches run concurrently on
    disjoint hardware: group occupancy is the slowest replica, energy is
    the sum, and recommendations never depend on the routing.
    """

    #: Telemetry planted by :func:`repro.obs.attach_telemetry`; see
    #: :class:`repro.core.pipeline._EngineBase`.
    _obs = None

    #: Fault plane planted by :func:`repro.serving.resilience.attach_faults`
    #: (None = no chaos: serve_batch takes the untouched fast path).
    _faults = None
    #: This group's shard index inside the enclosing ShardedEngine.
    _fault_site = 0

    def __init__(
        self,
        replicas: Sequence[object],
        p95_target_s: Optional[float] = None,
        spill_headroom: float = 0.8,
    ):
        if not replicas:
            raise ValueError("need at least one replica")
        if p95_target_s is not None and p95_target_s <= 0.0:
            raise ValueError(f"p95 target must be positive, got {p95_target_s}")
        if not 0.0 < spill_headroom <= 1.0:
            raise ValueError(
                f"spill headroom must be in (0, 1], got {spill_headroom}"
            )
        self.replicas = list(replicas)
        if len({replica.top_k for replica in self.replicas}) != 1:
            raise ValueError("replicas must agree on top-k")
        self.p95_target_s = p95_target_s
        self.spill_headroom = spill_headroom
        #: Cumulative busy seconds dispatched to each replica so far.
        self.busy_s = [0.0] * len(self.replicas)
        #: Cumulative queries dispatched to each replica so far.
        self.assigned = [0] * len(self.replicas)
        #: Queries routed past the cheapest replica (spillover mode only).
        self.spilled = 0

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def top_k(self) -> int:
        return self.replicas[0].top_k

    @property
    def expected_query_latency_s(self) -> Optional[float]:
        """Group-level work estimate: mean member estimate over R
        concurrent replicas (None before any member has served)."""
        known = [
            value
            for replica in self.replicas
            if (value := getattr(replica, "expected_query_latency_s", None))
        ]
        if not known:
            return None
        return float(np.mean(known)) / len(self.replicas)

    def _work_estimates(self) -> List[float]:
        """Per-replica expected seconds of work per assigned query."""
        observed = [
            getattr(replica, "expected_query_latency_s", None)
            for replica in self.replicas
        ]
        known = [value for value in observed if value]
        default = float(np.mean(known)) if known else 1.0
        return [value if value else default for value in observed]

    def _energy_order(self) -> List[int]:
        """Replica indices cheapest-first.

        Ranked by the observed energy-per-query EWMA once every replica
        has served; until then the constructor's list order stands (the
        builder lists IMC primaries before GPU spillover replicas).
        """
        energies = [
            getattr(replica, "expected_query_energy_pj", None)
            for replica in self.replicas
        ]
        if any(value is None for value in energies):
            return list(range(len(self.replicas)))
        return sorted(range(len(self.replicas)), key=lambda i: (energies[i], i))

    def assign(
        self, num_queries: int, allowed: Optional[Sequence[int]] = None
    ) -> List[List[int]]:
        """Plan one dispatch round: query position -> replica.

        Deterministic (ties go to the lowest replica index), so replays
        reproduce the same routing.  ``allowed`` restricts the round to a
        subset of replica indices -- the failover hook the fault plane
        uses to route around open circuit breakers; ``None`` (the
        default, and the behaviour when every breaker is closed) admits
        every replica and routes exactly as before.
        """
        estimates = self._work_estimates()
        assignment: List[List[int]] = [[] for _ in self.replicas]
        candidates_pool = (
            range(len(self.replicas)) if allowed is None else list(allowed)
        )
        if self.p95_target_s is None:
            projected = list(self.busy_s)
            for position in range(num_queries):
                target = min(
                    candidates_pool,
                    key=lambda index: (projected[index], index),
                )
                assignment[target].append(position)
                projected[target] += estimates[target]
            return assignment

        # Spillover: all replicas start this batch together (the
        # scheduler serialises batches), so the latency threat is the
        # work queued on a replica *within this round*.
        order = self._energy_order()
        if allowed is not None:
            permitted = set(allowed)
            order = [index for index in order if index in permitted]
        primary = order[0]
        if getattr(self.replicas[primary], "expected_query_latency_s", None) is None:
            # Cold start: no latency evidence yet, so no threat to react
            # to -- stay on the cheapest replica until it has served.
            assignment[primary] = list(range(num_queries))
            return assignment
        slack_s = self.spill_headroom * self.p95_target_s
        round_work = [0.0] * len(self.replicas)
        # Slow-start: a replica whose speed is still unobserved gets at
        # most one probe query per round -- its work estimate is a guess,
        # and guessing wrong on a batch poisons the whole round's tail.
        quota = [
            num_queries
            if getattr(replica, "expected_query_latency_s", None) is not None
            else 1
            for replica in self.replicas
        ]
        for position in range(num_queries):
            target = None
            for index in order:
                if (
                    len(assignment[index]) < quota[index]
                    and round_work[index] + estimates[index] <= slack_s
                ):
                    target = index
                    break
            if target is None:
                # Saturated everywhere: level projected completions and
                # use cumulative busy time as the long-run tiebreak.
                candidates = [
                    index
                    for index in candidates_pool
                    if len(assignment[index]) < quota[index]
                ] or [primary]
                target = min(
                    candidates,
                    key=lambda index: (
                        round_work[index] + estimates[index],
                        self.busy_s[index],
                        index,
                    ),
                )
            if target != primary:
                self.spilled += 1
            assignment[target].append(position)
            round_work[target] += estimates[target]
        return assignment

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Batch-of-one convenience mirroring the engine interface."""
        return self.serve_batch([query]).results[0]

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        if not queries:
            return BatchResult(results=[], cost=Cost())
        if self._faults is not None:
            return self._serve_batch_chaos(queries, self._faults)
        assignment = self.assign(len(queries))
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.active
        spillover = self.p95_target_s is not None
        primary = self._energy_order()[0] if (traced and spillover) else 0
        placed: Dict[int, QueryResult] = {}
        sub_costs: List[Cost] = []
        for index, positions in enumerate(assignment):
            if not positions:
                continue
            if traced:
                # Replica sub-batches run concurrently: each replica span
                # starts when the enclosing (shard) stage started.
                start_s = tracer.cursor_s
                probe = (
                    getattr(
                        self.replicas[index], "expected_query_latency_s", None
                    )
                    is None
                )
                tracer.open(
                    f"replica{index}",
                    start_s,
                    category="serve",
                    replica=index,
                    engine=type(self.replicas[index]).__name__,
                    queries=len(positions),
                    spill=spillover and index != primary,
                )
                if spillover and probe:
                    tracer.instant(
                        "spillover-probe", start_s, replica=index
                    )
            sub_batch = self.replicas[index].serve_batch(
                [queries[position] for position in positions]
            )
            if traced:
                tracer.close(start_s + sub_batch.cost.latency_s)
            self.busy_s[index] += sub_batch.cost.latency_s
            self.assigned[index] += len(positions)
            sub_costs.append(sub_batch.cost)
            for position, result in zip(positions, sub_batch.results):
                placed[position] = result
        return BatchResult(
            results=[placed[position] for position in range(len(queries))],
            cost=Cost.concurrent(sub_costs),
        )

    def _serve_batch_chaos(self, queries: Sequence[ServeQuery], ctx) -> BatchResult:
        """serve_batch under an attached fault plane.

        Mirrors the plain path exactly when nothing fires (same routing,
        same spans, same costs -- the empty-plan bit-identity invariant),
        and layers the resilience behaviours on top when it does:
        breaker-aware failover routing, per-lane timeouts + retries with
        backoff, and tail hedging.  Busy/assigned accounting stays keyed
        by the *planned* replica index so routing replays exactly even
        when a retry lands elsewhere.
        """
        resilience = ctx.resilience
        base_s = ctx.attempt_time_s
        shard = self._fault_site
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.active
        spillover = self.p95_target_s is not None
        if resilience is not None:
            allowed = [
                index
                for index in range(len(self.replicas))
                if ctx.breaker(shard, index).allow(base_s)
            ]
            if not allowed:
                # Every breaker open: fail fast without touching an
                # engine -- the cheap steady state once a whole shard is
                # known-dark (keeps the tail flat during an outage).
                return BatchResult(
                    results=[failed_query_result() for _ in queries],
                    cost=Cost(),
                )
            if len(allowed) == len(self.replicas):
                allowed = None  # the healthy fast path routes as before
        else:
            allowed = None
        assignment = self.assign(len(queries), allowed=allowed)
        primary = self._energy_order()[0] if (traced and spillover) else 0
        placed: Dict[int, QueryResult] = {}
        sub_costs: List[Cost] = []
        for index, positions in enumerate(assignment):
            if not positions:
                continue
            sub_queries = [queries[position] for position in positions]
            lane_results, lane_cost = self._serve_lane_chaos(
                index, sub_queries, ctx, base_s, tracer if traced else None,
                spillover, primary,
            )
            self.busy_s[index] += lane_cost.latency_s
            self.assigned[index] += len(positions)
            sub_costs.append(lane_cost)
            for position, result in zip(positions, lane_results):
                placed[position] = result
        ctx.begin_round(base_s)  # restore for the caller's next lane/shard
        return BatchResult(
            results=[placed[position] for position in range(len(queries))],
            cost=Cost.concurrent(sub_costs),
        )

    def _serve_lane_chaos(
        self,
        index: int,
        sub: Sequence[ServeQuery],
        ctx,
        base_s: float,
        tracer,
        spillover: bool,
        primary: int,
    ) -> Tuple[List[QueryResult], Cost]:
        """One replica lane of a chaos dispatch round.

        Returns the lane's per-query results plus its occupancy cost.
        The first attempt goes to the planned replica; each failure pays
        a detection latency (the fault's own latency for transient
        errors, the configured timeout for crashes/outages), then the
        retry fails over to the least-loaded breaker-allowed peer or, if
        none exists, backs off exponentially on the same replica.  A
        successful-but-straggling attempt fires one hedge on a peer and
        the earlier finisher sets the lane latency.  All failed-attempt
        and hedge energy is accumulated on the context for the session
        to re-bill under "Retry"/"Hedge".
        """
        resilience = ctx.resilience
        shard = self._fault_site
        n = len(sub)
        if tracer is not None:
            start_s = tracer.cursor_s
            probe = (
                getattr(self.replicas[index], "expected_query_latency_s", None)
                is None
            )
            tracer.open(
                f"replica{index}",
                start_s,
                category="serve",
                replica=index,
                engine=type(self.replicas[index]).__name__,
                queries=n,
                spill=spillover and index != primary,
            )
            if spillover and probe:
                tracer.instant("spillover-probe", start_s, replica=index)
        current = index
        lane_offset_s = 0.0  # wall-clock burnt on failed attempts so far
        wasted = Cost()  # physical cost of those failed attempts
        retries = 0
        batch = None
        while True:
            pre_estimate = getattr(
                self.replicas[current], "expected_query_latency_s", None
            )
            if resilience is not None:
                ctx.breaker(shard, current).take_probe()
            ctx.begin_round(base_s + lane_offset_s)
            try:
                batch = self.replicas[current].serve_batch(sub)
                break
            except FaultError as fault:
                if fault.kind == ERROR:
                    # The replica did the work and returned garbage: the
                    # caller pays the full serve latency to find out.
                    detect_s = fault.cost.latency_s
                    ctx.counters["error_hits"] += 1
                else:
                    # Crash/outage: silence, detected by timeout.
                    detect_s = (
                        resilience.attempt_timeout_s(pre_estimate, n)
                        if resilience is not None
                        else 0.0
                    )
                    ctx.counters["crash_hits"] += 1
                lane_offset_s += detect_s
                wasted = wasted.then(
                    Cost(
                        energy_pj=fault.cost.energy_pj,
                        latency_ns=detect_s * 1e9,
                    )
                )
                failed_at_s = base_s + lane_offset_s
                if resilience is not None:
                    ctx.breaker(shard, current).record_failure(failed_at_s)
                ctx.record_event(
                    "attempt-failed",
                    failed_at_s,
                    kind=fault.kind,
                    shard=shard,
                    replica=current,
                )
                if (
                    resilience is None
                    or retries >= resilience.max_retries
                    or not ctx.retry_budget_left()
                ):
                    break
                retries += 1
                ctx.retries_used += 1
                ctx.counters["retries"] += 1
                peers = [
                    peer
                    for peer in range(len(self.replicas))
                    if peer != current
                    and ctx.breaker(shard, peer).allow(failed_at_s)
                ]
                if peers:
                    target = min(
                        peers, key=lambda peer: (self.busy_s[peer], peer)
                    )
                    ctx.counters["failovers"] += 1
                    ctx.record_event(
                        "failover",
                        failed_at_s,
                        shard=shard,
                        origin=current,
                        target=target,
                    )
                    current = target
                else:
                    backoff_s = resilience.backoff_base_s * (
                        resilience.backoff_multiplier ** (retries - 1)
                    )
                    lane_offset_s += backoff_s
                    ctx.record_event(
                        "retry-backoff",
                        base_s + lane_offset_s,
                        shard=shard,
                        replica=current,
                        backoff_s=backoff_s,
                    )
        if batch is None:
            # Attempts exhausted: the lane's queries are dropped.  The
            # wasted energy is re-billed via the context; the lane's
            # occupancy is the time burnt detecting the failures.
            ctx.add_retry_cost(wasted)
            lane_cost = Cost(energy_pj=0.0, latency_ns=lane_offset_s * 1e9)
            if tracer is not None:
                tracer.close(start_s + lane_cost.latency_s)
            return [failed_query_result() for _ in sub], lane_cost

        done_s = base_s + lane_offset_s + batch.cost.latency_s
        if resilience is not None:
            ctx.breaker(shard, current).record_success(done_s)
        lane_latency_s = lane_offset_s + batch.cost.latency_s
        if (
            resilience is not None
            and pre_estimate is not None
            and batch.cost.latency_s
            > resilience.hedge_factor * pre_estimate * n
        ):
            # Straggler: the attempt succeeded but blew its expectation.
            # Model the hedge a real client would have fired after
            # hedge_delay: serve the same sub-batch on the best peer
            # (bit-identical results by construction), let the earlier
            # finisher set the lane latency, bill both energies.
            ctx.counters["straggled_batches"] += 1
            hedge_delay_s = resilience.hedge_delay_factor * pre_estimate * n
            peers = [
                peer
                for peer in range(len(self.replicas))
                if peer != current
                and ctx.breaker(shard, peer).allow(
                    base_s + lane_offset_s + hedge_delay_s
                )
            ]
            if peers and ctx.retry_budget_left():
                target = min(peers, key=lambda peer: (self.busy_s[peer], peer))
                ctx.retries_used += 1
                ctx.counters["hedges"] += 1
                ctx.record_event(
                    "hedge",
                    base_s + lane_offset_s + hedge_delay_s,
                    shard=shard,
                    origin=current,
                    replica=target,
                )
                ctx.breaker(shard, target).take_probe()
                ctx.begin_round(base_s + lane_offset_s + hedge_delay_s)
                try:
                    hedge_batch = self.replicas[target].serve_batch(sub)
                    hedge_latency_s = hedge_delay_s + hedge_batch.cost.latency_s
                    ctx.breaker(shard, target).record_success(
                        base_s + lane_offset_s + hedge_latency_s
                    )
                    ctx.add_hedge_cost(
                        Cost(energy_pj=hedge_batch.cost.energy_pj)
                    )
                    if hedge_latency_s < batch.cost.latency_s:
                        lane_latency_s = lane_offset_s + hedge_latency_s
                except FaultError as fault:
                    # Lost hedge: its (possibly partial) energy still
                    # burnt; the original result stands.
                    ctx.breaker(shard, target).record_failure(
                        base_s + lane_offset_s + hedge_delay_s
                    )
                    ctx.add_hedge_cost(Cost(energy_pj=fault.cost.energy_pj))
        if wasted.energy_pj or wasted.latency_ns:
            ctx.add_retry_cost(wasted)
        if lane_offset_s == 0.0 and lane_latency_s == batch.cost.latency_s:
            # Clean lane: reuse the engine's cost object untouched so the
            # empty-plan path stays bit-identical (no s<->ns round trip).
            lane_cost = batch.cost
        else:
            lane_cost = Cost(
                energy_pj=batch.cost.energy_pj,
                latency_ns=lane_latency_s * 1e9,
            )
        if tracer is not None:
            tracer.close(start_s + lane_cost.latency_s)
        return list(batch.results), lane_cost

    def stats(self) -> Dict[str, object]:
        """Routing counters (per-replica load and spill volume)."""
        return {
            "assigned": list(self.assigned),
            "busy_s": list(self.busy_s),
            "spilled": self.spilled,
            "spill_rate": self.spilled / max(1, sum(self.assigned)),
        }

    def merge_cost(self, num_entries: int) -> Cost:
        """Expose the members' platform merge model (router nesting)."""
        return _member_merge_cost(self.replicas, num_entries)


class ShardedEngine:
    """Scatter-gather serving over N corpus-partitioned engines."""

    #: Telemetry planted by :func:`repro.obs.attach_telemetry`; see
    #: :class:`repro.core.pipeline._EngineBase`.
    _obs = None

    #: Fault plane planted by :func:`repro.serving.resilience.attach_faults`
    #: (None = no chaos: serve_batch takes the untouched fast path).
    _faults = None

    def __init__(self, shards: Sequence[object], top_k: int):
        if not shards:
            raise ValueError("need at least one shard")
        if top_k < 1:
            raise ValueError("top-k must be >= 1")
        self.shards = list(shards)
        self.top_k = top_k
        # The platform merge model is a pure function of the gathered
        # entry count, so each distinct count is priced once per router
        # and replayed for every query (identical Cost values, identical
        # fold order -- bitwise the same totals as pricing per query).
        self._merge_cost_cache: Dict[int, Cost] = {}

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def expected_query_latency_s(self) -> Optional[float]:
        """Scatter-gather work estimate: the slowest shard dominates
        (None before any shard has served)."""
        known = [
            value
            for shard in self.shards
            if (value := getattr(shard, "expected_query_latency_s", None))
        ]
        if not known:
            return None
        return float(max(known))

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Batch-of-one convenience mirroring the engine interface."""
        return self.serve_batch([query]).results[0]

    def _merge_cost_for(self, num_entries: int) -> Cost:
        """Batch-cached :func:`_member_merge_cost` (priced once per count)."""
        cached = self._merge_cost_cache.get(num_entries)
        if cached is None:
            cached = _member_merge_cost(self.shards, num_entries)
            self._merge_cost_cache[num_entries] = cached
        return cached

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        """Scatter the batch to every shard, gather and merge at once.

        The gather stacks every shard's ranked lists into one padded
        (Q, shards * top_k) score matrix and runs a single stable argsort
        over it: padding scores sit below every CTR (sigmoids are > 0) so
        they sort last, and padding only inserts *gaps* into the
        shard-major entry numbering, so the stable tie-break reproduces
        the per-query ``(-score, entry index)`` merge order bit for bit.
        """
        if not queries:
            return BatchResult(results=[], cost=Cost())
        if self._faults is not None:
            return self._serve_batch_chaos(queries, self._faults)
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.active
        base_s = tracer.cursor_s if traced else 0.0
        shard_batches = []
        for shard_index, shard in enumerate(self.shards):
            if traced:
                # All shards scatter together at the stage start; each
                # shard's lane shows its own occupancy.
                tracer.open(
                    f"shard{shard_index}",
                    base_s,
                    category="serve",
                    track=f"shard{shard_index}",
                    shard=shard_index,
                    queries=len(queries),
                )
            shard_batch = shard.serve_batch(queries)
            if traced:
                tracer.close(base_s + shard_batch.cost.latency_s)
            shard_batches.append(shard_batch)
        # Shards are replicated fabrics running concurrently.
        scatter_cost = Cost.concurrent(batch.cost for batch in shard_batches)

        num_queries = len(queries)
        width = len(self.shards) * self.top_k
        score_matrix = np.full((num_queries, width), -1.0)
        item_matrix = np.zeros((num_queries, width), dtype=np.int64)
        entry_counts = [0] * num_queries
        for shard_index, batch in enumerate(shard_batches):
            base = shard_index * self.top_k
            for position, result in enumerate(batch.results):
                length = len(result.scores)
                score_matrix[position, base : base + length] = result.scores
                item_matrix[position, base : base + length] = result.items
                entry_counts[position] += length

        order = np.argsort(-score_matrix, axis=1, kind="stable")[:, : self.top_k]
        item_lists = np.take_along_axis(item_matrix, order, axis=1).tolist()
        score_lists = np.take_along_axis(score_matrix, order, axis=1).tolist()

        merged: List[QueryResult] = []
        merge_total = Cost()
        for position in range(num_queries):
            per_shard = [batch.results[position] for batch in shard_batches]
            num_entries = entry_counts[position]
            merge_cost = self._merge_cost_for(num_entries)
            merge_total = merge_total.then(merge_cost)

            ledger = Ledger(name="sharded-query")
            for result in per_shard:
                ledger.extend(result.ledger)
            ledger.charge("Merge", merge_cost)
            per_query_cost = Cost.concurrent(
                result.cost for result in per_shard
            ).then(merge_cost)
            take = min(self.top_k, num_entries)
            merged.append(
                QueryResult(
                    items=item_lists[position][:take],
                    candidate_count=sum(
                        result.candidate_count for result in per_shard
                    ),
                    cost=per_query_cost,
                    ledger=ledger,
                    scores=score_lists[position][:take],
                )
            )
        if traced:
            merge_start_s = base_s + scatter_cost.latency_s
            tracer.add(
                "merge",
                merge_start_s,
                merge_start_s + merge_total.latency_s,
                category="merge",
                shards=len(self.shards),
                entries=sum(entry_counts),
                queries=num_queries,
            )
        return BatchResult(results=merged, cost=scatter_cost.then(merge_total))

    def merge_cost(self, num_entries: int) -> Cost:
        """Expose the underlying platform's merge model (router nesting)."""
        return _member_merge_cost(self.shards, num_entries)

    def _serve_bare_shard_chaos(
        self,
        shard,
        shard_index: int,
        queries: Sequence[ServeQuery],
        ctx,
        round_s: float,
    ) -> BatchResult:
        """One unreplicated shard's scatter under the fault plane.

        A bare shard has no peer to fail over to, so a faulted attempt
        makes the whole shard dark for this batch: the caller waits the
        shard deadline (or the error's own latency), bills the wasted
        energy for re-billing, and the gather goes partial.  An open
        breaker skips the attempt entirely -- the steady state while a
        known-dead shard recovers.
        """
        resilience = ctx.resilience
        if resilience is not None and not ctx.breaker(shard_index, 0).allow(
            round_s
        ):
            return BatchResult(
                results=[failed_query_result() for _ in queries], cost=Cost()
            )
        if resilience is not None:
            ctx.breaker(shard_index, 0).take_probe()
        estimate = getattr(shard, "expected_query_latency_s", None)
        try:
            batch = shard.serve_batch(queries)
        except FaultError as fault:
            if fault.kind == ERROR:
                detect_s = fault.cost.latency_s
                ctx.counters["error_hits"] += 1
            else:
                detect_s = (
                    resilience.shard_deadline_s(estimate, len(queries))
                    if resilience is not None
                    else 0.0
                )
                ctx.counters["crash_hits"] += 1
            failed_at_s = round_s + detect_s
            if resilience is not None:
                ctx.breaker(shard_index, 0).record_failure(failed_at_s)
            ctx.record_event(
                "shard-dark", failed_at_s, kind=fault.kind, shard=shard_index
            )
            ctx.add_retry_cost(
                Cost(energy_pj=fault.cost.energy_pj, latency_ns=detect_s * 1e9)
            )
            return BatchResult(
                results=[failed_query_result() for _ in queries],
                cost=Cost(latency_ns=detect_s * 1e9),
            )
        if resilience is not None:
            ctx.breaker(shard_index, 0).record_success(
                round_s + batch.cost.latency_s
            )
        return batch

    def _serve_batch_chaos(
        self, queries: Sequence[ServeQuery], ctx
    ) -> BatchResult:
        """serve_batch under an attached fault plane.

        The scatter and the padded single-argsort gather are arithmetic-
        identical to the plain path (the empty-plan bit-identity
        invariant: a failed shard contributes zero entries exactly like
        an empty ranked list would).  On top of that: replica-group
        shards recover internally (retries/failover/hedges), bare shards
        go dark past their deadline, and the per-query construction
        downgrades -- resilience ON merges the survivors into a partial
        (degraded) answer and records the recall loss, resilience OFF
        rejects any response missing a corpus slice.
        """
        resilience = ctx.resilience
        round_s = ctx.attempt_time_s
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        traced = tracer is not None and tracer.active
        base_s = tracer.cursor_s if traced else 0.0
        shard_batches = []
        for shard_index, shard in enumerate(self.shards):
            if traced:
                tracer.open(
                    f"shard{shard_index}",
                    base_s,
                    category="serve",
                    track=f"shard{shard_index}",
                    shard=shard_index,
                    queries=len(queries),
                )
            # Shards scatter concurrently: every shard's first attempt
            # starts at the same round anchor (lanes advance it locally
            # for their own retries/hedges).
            ctx.begin_round(round_s)
            if getattr(shard, "replicas", None) is not None:
                shard_batch = shard.serve_batch(queries)
            else:
                shard_batch = self._serve_bare_shard_chaos(
                    shard, shard_index, queries, ctx, round_s
                )
            if traced:
                tracer.close(base_s + shard_batch.cost.latency_s)
            shard_batches.append(shard_batch)
        ctx.begin_round(round_s)
        scatter_cost = Cost.concurrent(batch.cost for batch in shard_batches)

        num_queries = len(queries)
        width = len(self.shards) * self.top_k
        score_matrix = np.full((num_queries, width), -1.0)
        item_matrix = np.zeros((num_queries, width), dtype=np.int64)
        entry_counts = [0] * num_queries
        for shard_index, batch in enumerate(shard_batches):
            base = shard_index * self.top_k
            for position, result in enumerate(batch.results):
                length = len(result.scores)
                score_matrix[position, base : base + length] = result.scores
                item_matrix[position, base : base + length] = result.items
                entry_counts[position] += length

        order = np.argsort(-score_matrix, axis=1, kind="stable")[:, : self.top_k]
        item_lists = np.take_along_axis(item_matrix, order, axis=1).tolist()
        score_lists = np.take_along_axis(score_matrix, order, axis=1).tolist()

        merged: List[QueryResult] = []
        merge_total = Cost()
        partial_queries = 0
        for position in range(num_queries):
            per_shard = [batch.results[position] for batch in shard_batches]
            dark = sum(1 for result in per_shard if result.failed)
            if dark == len(per_shard) or (dark and resilience is None):
                # Every slice dark -- or a strict resilience-off client
                # that rejects responses missing part of the corpus.
                merged.append(failed_query_result())
                continue
            num_entries = entry_counts[position]
            merge_cost = self._merge_cost_for(num_entries)
            merge_total = merge_total.then(merge_cost)

            ledger = Ledger(name="sharded-query")
            for result in per_shard:
                # A dark shard's ledger is empty: extending is a no-op,
                # so healthy queries fold bit-identically to the plain
                # path.
                ledger.extend(result.ledger)
            ledger.charge("Merge", merge_cost)
            per_query_cost = Cost.concurrent(
                result.cost for result in per_shard
            ).then(merge_cost)
            take = min(self.top_k, num_entries)
            merged_result = QueryResult(
                items=item_lists[position][:take],
                candidate_count=sum(
                    result.candidate_count for result in per_shard
                ),
                cost=per_query_cost,
                ledger=ledger,
                scores=score_lists[position][:take],
            )
            if dark:
                merged_result.partial = True
                partial_queries += 1
                ctx.counters["partial_queries"] += 1
                ctx.counters["lost_entries"] += dark
                ctx.recall_loss += dark / len(per_shard)
            merged.append(merged_result)
        if partial_queries:
            ctx.record_event(
                "partial-merge",
                round_s + scatter_cost.latency_s,
                queries=partial_queries,
                shards=len(self.shards),
            )
        if traced:
            merge_start_s = base_s + scatter_cost.latency_s
            tracer.add(
                "merge",
                merge_start_s,
                merge_start_s + merge_total.latency_s,
                category="merge",
                shards=len(self.shards),
                entries=sum(entry_counts),
                queries=num_queries,
            )
        return BatchResult(results=merged, cost=scatter_cost.then(merge_total))


def make_sharded_engine(
    kind: str,
    filtering_model,
    ranking_model,
    num_shards: int,
    mapping: Optional[WorkloadMapping] = None,
    num_candidates: int = 72,
    top_k: int = 10,
    seed: int = 0,
    replicas_per_shard: int = 1,
    spillover_replicas_per_shard: int = 0,
    spillover_slo_s: Optional[float] = None,
    spill_headroom: float = 0.8,
    spillover_device: GPUDeviceModel = GTX1080,
    **engine_kwargs,
) -> ShardedEngine:
    """Build a :class:`ShardedEngine` of ``kind`` ('imars' or 'gpu').

    Each shard serves a round-robin slice of the corpus with a
    proportionally reduced candidate budget (``ceil(num_candidates /
    num_shards)``), so the merged candidate pool stays comparable to the
    unsharded engine's while each shard's serial ranking loop shortens by
    ~``num_shards``x -- the latency win sharding buys.

    ``replicas_per_shard > 1`` wraps every shard in a
    :class:`ReplicaGroup` of R engines built with *the same seed* (so
    every replica owns an identical LSH index and recommendations do not
    depend on R) -- the throughput win replication buys.

    ``spillover_replicas_per_shard > 0`` (iMARS only) additionally puts
    that many :class:`~repro.core.pipeline.GPUSpilloverEngine` replicas
    -- same models, same seed, same slice, bit-identical recommendations
    -- behind each shard, and the group routes cost-aware against
    ``spillover_slo_s`` (required): the IMC primaries absorb traffic up
    to ``spill_headroom`` of the latency target, the GPUs absorb only
    the overflow -- the heterogeneous-fleet trade the E-hetero study
    measures.
    """
    if kind not in ("imars", "gpu"):
        raise ValueError(f"unknown engine kind {kind!r} (use 'imars' or 'gpu')")
    if replicas_per_shard < 1:
        raise ValueError(
            f"replicas per shard must be >= 1, got {replicas_per_shard}"
        )
    if spillover_replicas_per_shard < 0:
        raise ValueError(
            f"spillover replicas must be >= 0, got {spillover_replicas_per_shard}"
        )
    if spillover_replicas_per_shard > 0:
        if kind != "imars":
            raise ValueError("spillover replicas only back iMARS primaries")
        if spillover_slo_s is None:
            raise ValueError(
                "spillover routing needs spillover_slo_s (the latency target "
                "that decides when overflow leaves the IMC primaries)"
            )
        if engine_kwargs.get("analog_dnn"):
            raise ValueError(
                "analog_dnn primaries cannot be mirrored bit-identically by "
                "GPU spillover replicas (a CUDA port has no crossbar noise)"
            )
    num_items = filtering_model.config.num_items
    partitions = partition_corpus(num_items, num_shards)
    per_shard_candidates = max(1, math.ceil(num_candidates / num_shards))

    def build_engine(shard_index: int, subset: np.ndarray) -> object:
        if kind == "imars":
            if mapping is None:
                raise ValueError("iMARS shards need a workload mapping")
            return IMARSEngine(
                filtering_model,
                ranking_model,
                mapping,
                num_candidates=per_shard_candidates,
                top_k=top_k,
                seed=seed + shard_index,
                item_subset=subset,
                **engine_kwargs,
            )
        return GPUReferenceEngine(
            filtering_model,
            ranking_model,
            num_candidates=per_shard_candidates,
            top_k=top_k,
            item_subset=subset,
            **engine_kwargs,
        )

    def build_spillover(shard_index: int, subset: np.ndarray) -> object:
        # Forward the primaries' engine kwargs (signature_bits, cost_model,
        # ...): the GPU replica must be built exactly like its IMC peers or
        # the bit-identical-recommendations invariant breaks.  analog_dnn
        # was rejected above; it has no GPU counterpart.
        spill_kwargs = {
            key: value
            for key, value in engine_kwargs.items()
            if key != "analog_dnn"
        }
        return GPUSpilloverEngine(
            filtering_model,
            ranking_model,
            mapping,
            num_candidates=per_shard_candidates,
            top_k=top_k,
            seed=seed + shard_index,
            item_subset=subset,
            device=spillover_device,
            **spill_kwargs,
        )

    shards: List[object] = []
    for shard_index, subset in enumerate(partitions):
        members = [
            build_engine(shard_index, subset) for _ in range(replicas_per_shard)
        ]
        members.extend(
            build_spillover(shard_index, subset)
            for _ in range(spillover_replicas_per_shard)
        )
        if len(members) == 1:
            shards.append(members[0])
        elif spillover_replicas_per_shard > 0:
            shards.append(
                ReplicaGroup(
                    members,
                    p95_target_s=spillover_slo_s,
                    spill_headroom=spill_headroom,
                )
            )
        else:
            shards.append(ReplicaGroup(members))
    return ShardedEngine(shards, top_k=top_k)


# -- online re-sharding: what a live scale event pays ---------------------


def migration_plan(
    num_items: int, old_shards: int, new_shards: int
) -> np.ndarray:
    """Global item ids whose round-robin home changes old -> new shards.

    :func:`partition_corpus` places item ``i`` on shard ``i % N``, so the
    moved set is exactly the ids whose residue differs under the two
    moduli.  Growing 1 -> 2 shards moves every other item; shrinking
    undoes the same moves; ``old == new`` moves nothing.
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    for label, count in (("old", old_shards), ("new", new_shards)):
        if not 1 <= count <= num_items:
            raise ValueError(
                f"{label} shard count must be in [1, {num_items}], got {count}"
            )
    ids = np.arange(num_items, dtype=np.int64)
    return ids[(ids % old_shards) != (ids % new_shards)]


def migration_cost(
    num_rows: int,
    embedding_dim: int,
    signature_bits: int,
    embedding_bits: int = 8,
    foms: ArrayFoMs = TABLE_II,
) -> Cost:
    """Cost of streaming ``num_rows`` item rows into their new arrays.

    Each moved row writes its int8 embedding (``embedding_dim *
    embedding_bits`` bits) into the new shard's ItET CMAs and its LSH
    signature into the TCAM arrays, 256-bit words per CMA write; the
    writes serialise over the destination shard's write port.  Charged
    to the session ledger under "Migration" -- the price of *not*
    restarting the deployment.
    """
    if num_rows < 0:
        raise ValueError(f"row count must be non-negative, got {num_rows}")
    if embedding_dim < 1 or signature_bits < 1 or embedding_bits < 1:
        raise ValueError("embedding dim, signature bits and width must be >= 1")
    words_per_row = math.ceil(embedding_dim * embedding_bits / 256) + math.ceil(
        signature_bits / 256
    )
    return foms.cma_write.repeated(num_rows * words_per_row)


def plan_scale_migration(
    num_items: int,
    old_deployment: Tuple[int, int],
    new_deployment: Tuple[int, int],
) -> Tuple[np.ndarray, int]:
    """(moved item ids, total rows written) of one online scale event.

    Re-partitioning writes every moved item once into its new shard;
    each *added* replica additionally copies its shard's full slice
    (summing to the whole corpus per added replica).  Removing replicas
    is free -- state is dropped, not moved.  The moved-id array (the
    re-partitioned ranges only) is what the result cache invalidates:
    replica copies add rows without relocating any.
    """
    old_shards, old_replicas = old_deployment
    new_shards, new_replicas = new_deployment
    for label, count in (
        ("old replica", old_replicas),
        ("new replica", new_replicas),
    ):
        if count < 1:
            raise ValueError(f"{label} count must be >= 1, got {count}")
    moved = migration_plan(num_items, old_shards, new_shards)
    total_rows = int(moved.size)
    if new_replicas > old_replicas:
        total_rows += (new_replicas - old_replicas) * num_items
    return moved, total_rows
