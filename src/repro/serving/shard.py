"""Shard router: partition the item corpus across replicated fabrics.

A single iMARS fabric (or GPU) ranks candidates *serially*, so the
per-candidate ranking loop dominates query latency.  Sharding splits the
item corpus round-robin across N engines; every query fans out to all
shards in parallel (scatter), each shard runs NNS + ranking over its own
slice with a proportionally smaller candidate budget, and the router
merges the per-shard top-k by CTR score (gather).

Cost semantics follow the repo's composition algebra: the shards run on
disjoint hardware, so their batch costs compose with
:meth:`Cost.alongside` (energy adds, latency is the slowest shard), and
the merge is charged through the platform's own top-k model
(:meth:`~repro.core.pipeline._EngineBase.merge_cost`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import (
    BatchResult,
    GPUReferenceEngine,
    IMARSEngine,
    QueryResult,
    ServeQuery,
)
from repro.energy.accounting import Cost, Ledger

__all__ = ["partition_corpus", "ShardedEngine", "make_sharded_engine"]


def partition_corpus(num_items: int, num_shards: int) -> List[np.ndarray]:
    """Round-robin split of ``num_items`` global ids into ``num_shards``.

    Round-robin (rather than contiguous ranges) keeps shards balanced even
    when item ids correlate with popularity or insertion time.
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    if not 1 <= num_shards <= num_items:
        raise ValueError(
            f"shard count must be in [1, {num_items}], got {num_shards}"
        )
    ids = np.arange(num_items, dtype=np.int64)
    return [ids[shard::num_shards] for shard in range(num_shards)]


class ShardedEngine:
    """Scatter-gather serving over N corpus-partitioned engines."""

    def __init__(self, shards: Sequence[object], top_k: int):
        if not shards:
            raise ValueError("need at least one shard")
        if top_k < 1:
            raise ValueError("top-k must be >= 1")
        self.shards = list(shards)
        self.top_k = top_k

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Batch-of-one convenience mirroring the engine interface."""
        return self.serve_batch([query]).results[0]

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        """Scatter the batch to every shard, gather and merge per query."""
        if not queries:
            return BatchResult(results=[], cost=Cost())
        shard_batches = [shard.serve_batch(queries) for shard in self.shards]
        # Shards are replicated fabrics running concurrently.
        scatter_cost = Cost.concurrent(batch.cost for batch in shard_batches)

        merged: List[QueryResult] = []
        merge_total = Cost()
        for position in range(len(queries)):
            per_shard = [batch.results[position] for batch in shard_batches]
            entries = [
                (item, score)
                for result in per_shard
                for item, score in zip(result.items, result.scores)
            ]
            # Stable sort by descending score: ties resolve in shard order,
            # matching a deterministic priority-encoder gather.
            order = sorted(
                range(len(entries)), key=lambda index: (-entries[index][1], index)
            )[: self.top_k]
            merge_cost = self.shards[0].merge_cost(len(entries))
            merge_total = merge_total.then(merge_cost)

            ledger = Ledger(name="sharded-query")
            for result in per_shard:
                ledger.extend(result.ledger)
            ledger.charge("Merge", merge_cost)
            per_query_cost = Cost.concurrent(
                result.cost for result in per_shard
            ).then(merge_cost)
            merged.append(
                QueryResult(
                    items=[entries[index][0] for index in order],
                    candidate_count=sum(
                        result.candidate_count for result in per_shard
                    ),
                    cost=per_query_cost,
                    ledger=ledger,
                    scores=[entries[index][1] for index in order],
                )
            )
        return BatchResult(results=merged, cost=scatter_cost.then(merge_total))

    def merge_cost(self, num_entries: int) -> Cost:
        """Expose the underlying platform's merge model (router nesting)."""
        return self.shards[0].merge_cost(num_entries)


def make_sharded_engine(
    kind: str,
    filtering_model,
    ranking_model,
    num_shards: int,
    mapping: Optional[WorkloadMapping] = None,
    num_candidates: int = 72,
    top_k: int = 10,
    seed: int = 0,
    **engine_kwargs,
) -> ShardedEngine:
    """Build a :class:`ShardedEngine` of ``kind`` ('imars' or 'gpu').

    Each shard serves a round-robin slice of the corpus with a
    proportionally reduced candidate budget (``ceil(num_candidates /
    num_shards)``), so the merged candidate pool stays comparable to the
    unsharded engine's while each shard's serial ranking loop shortens by
    ~``num_shards``x -- the latency win sharding buys.
    """
    if kind not in ("imars", "gpu"):
        raise ValueError(f"unknown engine kind {kind!r} (use 'imars' or 'gpu')")
    num_items = filtering_model.config.num_items
    partitions = partition_corpus(num_items, num_shards)
    per_shard_candidates = max(1, math.ceil(num_candidates / num_shards))
    shards: List[object] = []
    for shard_index, subset in enumerate(partitions):
        if kind == "imars":
            if mapping is None:
                raise ValueError("iMARS shards need a workload mapping")
            shards.append(
                IMARSEngine(
                    filtering_model,
                    ranking_model,
                    mapping,
                    num_candidates=per_shard_candidates,
                    top_k=top_k,
                    seed=seed + shard_index,
                    item_subset=subset,
                    **engine_kwargs,
                )
            )
        else:
            shards.append(
                GPUReferenceEngine(
                    filtering_model,
                    ranking_model,
                    num_candidates=per_shard_candidates,
                    top_k=top_k,
                    item_subset=subset,
                    **engine_kwargs,
                )
            )
    return ShardedEngine(shards, top_k=top_k)
