"""Shard router: partition the item corpus across replicated fabrics.

A single iMARS fabric (or GPU) ranks candidates *serially*, so the
per-candidate ranking loop dominates query latency.  Sharding splits the
item corpus round-robin across N engines; every query fans out to all
shards in parallel (scatter), each shard runs NNS + ranking over its own
slice with a proportionally smaller candidate budget, and the router
merges the per-shard top-k by CTR score (gather).

Sharding cuts *per-query* latency but not queueing: one engine per slice
is still a serial resource.  :class:`ReplicaGroup` adds the throughput
axis -- R functionally identical copies of one shard's engine, with each
dispatched micro-batch split across replicas by least outstanding work,
so the group's occupancy per batch approaches 1/R of a single replica's.
Replicas share the slice *and* the construction seed, so the group
returns bit-identical recommendations regardless of R.

Cost semantics follow the repo's composition algebra: shards and
replicas run on disjoint hardware, so their batch costs compose with
:meth:`Cost.alongside` (energy adds, latency is the slowest member), and
the merge is charged through the platform's own top-k model
(:meth:`~repro.core.pipeline._EngineBase.merge_cost`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import (
    BatchResult,
    GPUReferenceEngine,
    IMARSEngine,
    QueryResult,
    ServeQuery,
)
from repro.energy.accounting import Cost, Ledger

__all__ = [
    "partition_corpus",
    "ReplicaGroup",
    "ShardedEngine",
    "make_sharded_engine",
]


def partition_corpus(num_items: int, num_shards: int) -> List[np.ndarray]:
    """Round-robin split of ``num_items`` global ids into ``num_shards``.

    Round-robin (rather than contiguous ranges) keeps shards balanced even
    when item ids correlate with popularity or insertion time.
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    if not 1 <= num_shards <= num_items:
        raise ValueError(
            f"shard count must be in [1, {num_items}], got {num_shards}"
        )
    ids = np.arange(num_items, dtype=np.int64)
    return [ids[shard::num_shards] for shard in range(num_shards)]


class ReplicaGroup:
    """R identical engines over one corpus slice, load-balanced per batch.

    Each ``serve_batch`` round assigns queries greedily to the replica
    with the least outstanding work -- cumulative busy seconds from past
    assignments plus the estimated work already assigned this round
    (:attr:`~repro.core.pipeline._EngineBase.expected_query_latency_s`,
    falling back to uniform estimates before any replica has served).
    The per-replica sub-batches run concurrently on disjoint hardware:
    group occupancy is the slowest replica, energy is the sum.
    """

    def __init__(self, replicas: Sequence[object]):
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        #: Cumulative busy seconds dispatched to each replica so far.
        self.busy_s = [0.0] * len(self.replicas)

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def top_k(self) -> int:
        return self.replicas[0].top_k

    def _work_estimates(self) -> List[float]:
        """Per-replica expected seconds of work per assigned query."""
        observed = [
            getattr(replica, "expected_query_latency_s", None)
            for replica in self.replicas
        ]
        known = [value for value in observed if value]
        default = float(np.mean(known)) if known else 1.0
        return [value if value else default for value in observed]

    def assign(self, num_queries: int) -> List[List[int]]:
        """Plan one dispatch round: query position -> replica, greedily
        levelling projected busy time.  Deterministic (ties go to the
        lowest replica index), so replays reproduce the same routing."""
        estimates = self._work_estimates()
        projected = list(self.busy_s)
        assignment: List[List[int]] = [[] for _ in self.replicas]
        for position in range(num_queries):
            target = min(
                range(len(self.replicas)), key=lambda index: (projected[index], index)
            )
            assignment[target].append(position)
            projected[target] += estimates[target]
        return assignment

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Batch-of-one convenience mirroring the engine interface."""
        return self.serve_batch([query]).results[0]

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        if not queries:
            return BatchResult(results=[], cost=Cost())
        assignment = self.assign(len(queries))
        placed: Dict[int, QueryResult] = {}
        sub_costs: List[Cost] = []
        for index, positions in enumerate(assignment):
            if not positions:
                continue
            sub_batch = self.replicas[index].serve_batch(
                [queries[position] for position in positions]
            )
            self.busy_s[index] += sub_batch.cost.latency_s
            sub_costs.append(sub_batch.cost)
            for position, result in zip(positions, sub_batch.results):
                placed[position] = result
        return BatchResult(
            results=[placed[position] for position in range(len(queries))],
            cost=Cost.concurrent(sub_costs),
        )

    def merge_cost(self, num_entries: int) -> Cost:
        """Expose the members' platform merge model (router nesting)."""
        return self.replicas[0].merge_cost(num_entries)


class ShardedEngine:
    """Scatter-gather serving over N corpus-partitioned engines."""

    def __init__(self, shards: Sequence[object], top_k: int):
        if not shards:
            raise ValueError("need at least one shard")
        if top_k < 1:
            raise ValueError("top-k must be >= 1")
        self.shards = list(shards)
        self.top_k = top_k

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def recommend_query(self, query: ServeQuery) -> QueryResult:
        """Batch-of-one convenience mirroring the engine interface."""
        return self.serve_batch([query]).results[0]

    def serve_batch(self, queries: Sequence[ServeQuery]) -> BatchResult:
        """Scatter the batch to every shard, gather and merge per query."""
        if not queries:
            return BatchResult(results=[], cost=Cost())
        shard_batches = [shard.serve_batch(queries) for shard in self.shards]
        # Shards are replicated fabrics running concurrently.
        scatter_cost = Cost.concurrent(batch.cost for batch in shard_batches)

        merged: List[QueryResult] = []
        merge_total = Cost()
        for position in range(len(queries)):
            per_shard = [batch.results[position] for batch in shard_batches]
            entries = [
                (item, score)
                for result in per_shard
                for item, score in zip(result.items, result.scores)
            ]
            # Stable sort by descending score: ties resolve in shard order,
            # matching a deterministic priority-encoder gather.
            order = sorted(
                range(len(entries)), key=lambda index: (-entries[index][1], index)
            )[: self.top_k]
            merge_cost = self.shards[0].merge_cost(len(entries))
            merge_total = merge_total.then(merge_cost)

            ledger = Ledger(name="sharded-query")
            for result in per_shard:
                ledger.extend(result.ledger)
            ledger.charge("Merge", merge_cost)
            per_query_cost = Cost.concurrent(
                result.cost for result in per_shard
            ).then(merge_cost)
            merged.append(
                QueryResult(
                    items=[entries[index][0] for index in order],
                    candidate_count=sum(
                        result.candidate_count for result in per_shard
                    ),
                    cost=per_query_cost,
                    ledger=ledger,
                    scores=[entries[index][1] for index in order],
                )
            )
        return BatchResult(results=merged, cost=scatter_cost.then(merge_total))

    def merge_cost(self, num_entries: int) -> Cost:
        """Expose the underlying platform's merge model (router nesting)."""
        return self.shards[0].merge_cost(num_entries)


def make_sharded_engine(
    kind: str,
    filtering_model,
    ranking_model,
    num_shards: int,
    mapping: Optional[WorkloadMapping] = None,
    num_candidates: int = 72,
    top_k: int = 10,
    seed: int = 0,
    replicas_per_shard: int = 1,
    **engine_kwargs,
) -> ShardedEngine:
    """Build a :class:`ShardedEngine` of ``kind`` ('imars' or 'gpu').

    Each shard serves a round-robin slice of the corpus with a
    proportionally reduced candidate budget (``ceil(num_candidates /
    num_shards)``), so the merged candidate pool stays comparable to the
    unsharded engine's while each shard's serial ranking loop shortens by
    ~``num_shards``x -- the latency win sharding buys.

    ``replicas_per_shard > 1`` wraps every shard in a
    :class:`ReplicaGroup` of R engines built with *the same seed* (so
    every replica owns an identical LSH index and recommendations do not
    depend on R) -- the throughput win replication buys.
    """
    if kind not in ("imars", "gpu"):
        raise ValueError(f"unknown engine kind {kind!r} (use 'imars' or 'gpu')")
    if replicas_per_shard < 1:
        raise ValueError(
            f"replicas per shard must be >= 1, got {replicas_per_shard}"
        )
    num_items = filtering_model.config.num_items
    partitions = partition_corpus(num_items, num_shards)
    per_shard_candidates = max(1, math.ceil(num_candidates / num_shards))

    def build_engine(shard_index: int, subset: np.ndarray) -> object:
        if kind == "imars":
            if mapping is None:
                raise ValueError("iMARS shards need a workload mapping")
            return IMARSEngine(
                filtering_model,
                ranking_model,
                mapping,
                num_candidates=per_shard_candidates,
                top_k=top_k,
                seed=seed + shard_index,
                item_subset=subset,
                **engine_kwargs,
            )
        return GPUReferenceEngine(
            filtering_model,
            ranking_model,
            num_candidates=per_shard_candidates,
            top_k=top_k,
            item_subset=subset,
            **engine_kwargs,
        )

    shards: List[object] = []
    for shard_index, subset in enumerate(partitions):
        if replicas_per_shard == 1:
            shards.append(build_engine(shard_index, subset))
        else:
            shards.append(
                ReplicaGroup(
                    [
                        build_engine(shard_index, subset)
                        for _ in range(replicas_per_shard)
                    ]
                )
            )
    return ShardedEngine(shards, top_k=top_k)
