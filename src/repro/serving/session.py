"""The serving simulation loop: traffic in, SLO report out.

A :class:`ServingSession` wires the pieces together: it maps each
request's user to their :class:`~repro.core.pipeline.ServeQuery`, lets the
micro-batch scheduler drive the engine, short-circuits repeated queries
through the LRU cache, and accounts every joule (engine serve, cache
probes, cache fills) in one session ledger.

Timing model of one dispatched batch:

* cache lookups run first; hits complete at ``dispatch + lookup latency``
  (they never wait for the engine);
* the remaining misses are served as one engine micro-batch; they
  complete when the engine batch finishes;
* the engine is occupied for lookups + miss batch + cache fills, which is
  what the scheduler's free-time clock advances by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.serving.cache import ServingCache
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.slo import RequestRecord, SLOReport, summarize
from repro.serving.traffic import Request

__all__ = ["ServingResult", "ServingSession"]


@dataclass
class ServingResult:
    """Everything one simulated session produced."""

    label: str
    records: List[RequestRecord]
    batches: List[Batch]
    ledger: Ledger
    cache_stats: Optional[Dict[str, float]] = None
    _report: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def report(self) -> SLOReport:
        if self._report is None:
            self._report = summarize(self.records, self.ledger, label=self.label)
        return self._report


class ServingSession:
    """Simulate online serving of a request stream against one engine."""

    def __init__(
        self,
        engine,
        workload: Sequence[ServeQuery],
        scheduler: Optional[MicroBatchScheduler] = None,
        cache: Optional[ServingCache] = None,
        label: str = "session",
    ):
        """``engine`` is anything with ``serve_batch`` (a pipeline engine
        or a :class:`~repro.serving.shard.ShardedEngine`); ``workload[u]``
        is the query user ``u`` issues (users wrap modulo the workload)."""
        if not workload:
            raise ValueError("workload must contain at least one query")
        self.engine = engine
        self.workload = list(workload)
        self.scheduler = scheduler or MicroBatchScheduler(MicroBatchConfig())
        self.cache = cache
        self.label = label

    def _query_for(self, request: Request) -> ServeQuery:
        return self.workload[request.user % len(self.workload)]

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Drive the scheduler over ``requests`` and collect the records."""
        ledger = Ledger(name=self.label)
        records: List[RequestRecord] = []

        def service(batch: Batch) -> float:
            queries = [self._query_for(request) for request in batch.requests]
            hit_values: List[Optional[Tuple[Tuple[int, ...], Tuple[float, ...]]]] = []
            lookup_cost = Cost()
            if self.cache is not None:
                for query in queries:
                    value, cost = self.cache.lookup(query)
                    ledger.charge("Cache", cost)
                    lookup_cost = lookup_cost.then(cost)
                    hit_values.append(value)
            else:
                hit_values = [None] * len(queries)

            miss_positions = [
                position for position, value in enumerate(hit_values) if value is None
            ]
            serve_cost = Cost()
            miss_results = {}
            if miss_positions:
                # Deduplicate identical queries inside the batch: the engine
                # serves each distinct query once (the micro-batch is the
                # natural dedup window).
                distinct: Dict[ServeQuery, List[int]] = {}
                for position in miss_positions:
                    distinct.setdefault(queries[position], []).append(position)
                batch_result = self.engine.serve_batch(list(distinct))
                serve_cost = batch_result.cost
                ledger.charge("Serve", serve_cost)
                fill_cost = Cost()
                for query, result in zip(distinct, batch_result.results):
                    for position in distinct[query]:
                        miss_results[position] = result
                    if self.cache is not None:
                        fill_cost = fill_cost.then(
                            self.cache.insert(
                                query, (tuple(result.items), tuple(result.scores))
                            )
                        )
                if self.cache is not None and fill_cost.latency_ns > 0.0:
                    ledger.charge("Cache", fill_cost)
                serve_cost = serve_cost.then(fill_cost)

            occupancy = lookup_cost.then(serve_cost)
            for position, request in enumerate(batch.requests):
                if hit_values[position] is not None:
                    items, _scores = hit_values[position]
                    completion = batch.dispatch_s + lookup_cost.latency_s
                    records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=True,
                            items=tuple(items),
                        )
                    )
                else:
                    completion = batch.dispatch_s + occupancy.latency_s
                    records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=tuple(miss_results[position].items),
                        )
                    )
            return occupancy.latency_s

        batches = self.scheduler.run(requests, service)
        records.sort(key=lambda record: record.request.request_id)
        return ServingResult(
            label=self.label,
            records=records,
            batches=batches,
            ledger=ledger,
            cache_stats=self.cache.stats() if self.cache is not None else None,
        )
