"""The serving simulation loop: traffic in, SLO report out.

A :class:`ServingSession` wires the pieces together: it maps each
request's user to their :class:`~repro.core.pipeline.ServeQuery`, lets the
micro-batch scheduler drive the engine, short-circuits repeated queries
through the LRU cache, and accounts every joule (engine serve, cache
probes, cache fills) in one session ledger.

Timing model of one dispatched batch:

* an attached :class:`~repro.serving.admission.AdmissionController`
  rules first: shed requests complete (rejected) at dispatch and never
  touch the cache or engine; degraded ones are served with a reduced
  top-k;
* cache lookups run next; hits complete at ``dispatch + lookup latency``
  (they never wait for the engine);
* the remaining misses are served as one engine micro-batch; they
  complete when the engine batch finishes;
* the engine is occupied for lookups + miss batch + cache fills, which is
  what the scheduler's free-time clock advances by.

Online scale events
-------------------
With an ``engine_factory`` the deployment is no longer fixed for the
run: :meth:`ServingSession.scale_to` swaps the engine for a new
(shards, replicas) build *mid-run*, charging the state migration --
re-partitioned item rows streamed into their new shards, replica-slice
copies (:func:`~repro.serving.shard.plan_scale_migration`) -- to the
session ledger under "Migration", and invalidating cache entries that
reference moved item ranges.  The swap stalls the data plane: the
migration latency extends the batch occupancy the scheduler sees, so
scaling out under pressure costs real tail latency *now* in exchange for
capacity *afterwards* -- no simulation restart, no free lunch.  A
``scaler`` (e.g. :class:`~repro.serving.autoscaler.OnlineScaler` or a
:class:`~repro.serving.autoscaler.ScheduledScalePlan`) automates the
trigger after every batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import BatchResult, ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.obs.metrics import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS_S
from repro.obs.telemetry import Telemetry, attach_telemetry
from repro.serving.admission import ACCEPT, DEGRADE, SHED, AdmissionController
from repro.serving.cache import ServingCache
from repro.serving.faults import ERROR, FaultError, FaultPlan
from repro.serving.pricing import PriceBook, PriceLedger, price_serving_run
from repro.serving.resilience import (
    FaultContext,
    ResilienceConfig,
    attach_faults,
    failed_query_result,
)
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.shard import migration_cost, plan_scale_migration
from repro.serving.slo import (
    RequestRecord,
    SLOReport,
    summarize,
    summarize_tenants,
)
from repro.serving.traffic import Request

__all__ = ["ScaleEvent", "ServingResult", "ServingSession"]


@dataclass(frozen=True)
class ScaleEvent:
    """One online deployment change and what it cost."""

    time_s: float
    old_deployment: Tuple[int, int]
    new_deployment: Tuple[int, int]
    moved_rows: int
    invalidated_entries: int
    cost: Cost


@dataclass
class ServingResult:
    """Everything one simulated session produced."""

    label: str
    records: List[RequestRecord]
    batches: List[Batch]
    ledger: Ledger
    cache_stats: Optional[Dict[str, float]] = None
    admission_stats: Optional[Dict[str, object]] = None
    spill_stats: Optional[Dict[str, object]] = None
    #: Fault/recovery accounting (:meth:`FaultContext.stats`) when the
    #: session ran under an attached fault plane; None otherwise.
    fault_stats: Optional[Dict[str, object]] = None
    #: Dollar bill of the run (:func:`~repro.serving.pricing.price_serving_run`)
    #: when the session carried a price book; None = energy-only run.
    price_ledger: Optional[PriceLedger] = None
    scale_events: List[ScaleEvent] = field(default_factory=list)
    _report: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def report(self) -> SLOReport:
        if self._report is None:
            mttr_s = (
                self.fault_stats.get("mttr_s")
                if self.fault_stats is not None
                else None
            )
            self._report = summarize(
                self.records,
                self.ledger,
                label=self.label,
                mttr_s=mttr_s,
                price_ledger=self.price_ledger,
            )
        return self._report

    @property
    def tenant_reports(self) -> Dict[str, SLOReport]:
        """Per-tenant SLO reports (energy attributed pro rata)."""
        return summarize_tenants(self.records, self.ledger, label=self.label)


def _primary_engine(engine) -> object:
    """Descend routers (shards[0] / replicas[0]) to a concrete engine."""
    seen = 0
    while seen < 8:  # routers never nest deeper than shard -> replica
        if hasattr(engine, "shards"):
            engine = engine.shards[0]
        elif hasattr(engine, "replicas"):
            engine = engine.replicas[0]
        else:
            return engine
        seen += 1
    return engine


def _collect_spill(engine) -> Tuple[int, int]:
    """(spilled, assigned) totals across an engine's replica groups."""
    spilled = 0
    assigned = 0
    groups = engine.shards if hasattr(engine, "shards") else [engine]
    for group in groups:
        if hasattr(group, "spilled"):
            spilled += group.spilled
            assigned += sum(group.assigned)
    return spilled, assigned


class ServingSession:
    """Simulate online serving of a request stream against one engine."""

    def __init__(
        self,
        engine,
        workload: Sequence[ServeQuery],
        scheduler: Optional[MicroBatchScheduler] = None,
        cache: Optional[ServingCache] = None,
        label: str = "session",
        admission: Optional[AdmissionController] = None,
        engine_factory: Optional[Callable[[int, int], object]] = None,
        deployment: Tuple[int, int] = (1, 1),
        scaler=None,
        telemetry: Optional[Telemetry] = None,
        faults=None,
        resilience: Optional[ResilienceConfig] = None,
        price_book: Optional[PriceBook] = None,
        engine_kind: str = "imc",
    ):
        """``engine`` is anything with ``serve_batch`` (a pipeline engine
        or a :class:`~repro.serving.shard.ShardedEngine`); ``workload[u]``
        is the query user ``u`` issues (users wrap modulo the workload).

        ``engine_factory(shards, replicas)`` rebuilds the engine for an
        online scale event (required by :meth:`scale_to` and by a
        ``scaler``); ``deployment`` names the (shards, replicas) the
        initial engine was built with.  ``scaler`` is consulted after
        every batch with the observed records and may return a new
        deployment (see :mod:`repro.serving.autoscaler`).

        ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on the
        observability plane: per-request span traces, stage metrics and
        control-plane annotations, attached through the engine tree and
        the scheduler.  Tracing is observation only -- it charges no
        ledger and draws no randomness, so results are bit-identical
        with or without it.

        ``faults`` (a :class:`~repro.serving.faults.FaultPlan` or
        :class:`~repro.serving.faults.FaultInjector`) attaches the chaos
        plane: scheduled crashes, shard outages, stragglers, transient
        errors and cache flushes fire against the serve path.
        ``resilience`` (a :class:`~repro.serving.resilience.ResilienceConfig`)
        turns on the self-healing layer -- timeouts+retries, hedging,
        circuit breakers, partial scatter-gather; without it the fleet
        takes the faults on the chin and drops the affected requests.
        Passing ``resilience`` alone wraps the fleet over an empty plan
        (the bit-identity configuration the property tests pin).

        ``price_book`` (a :class:`~repro.serving.pricing.PriceBook`)
        turns on dollar accounting: after each run the energy ledger is
        priced row for row (engine time at ``engine_kind``'s $/hour,
        Warm-up off-peak-discounted, Retry/Hedge/Migration through the
        same rows PRs 5 and 8 bill in joules) plus the cache's
        get/put/storage service fees, and the resulting
        :class:`~repro.serving.pricing.PriceLedger` lands on
        ``ServingResult.price_ledger`` and the report's dollar columns.
        Pricing is pure post-processing of the ledger -- it perturbs no
        serve-path decision, so priced and unpriced runs are
        bit-identical in records and energy.
        """
        if not workload:
            raise ValueError("workload must contain at least one query")
        if scaler is not None and engine_factory is None:
            raise ValueError("an online scaler needs an engine_factory")
        if min(deployment) < 1:
            raise ValueError(f"deployment axes must be >= 1, got {deployment}")
        self.engine = engine
        self.workload = list(workload)
        self.scheduler = scheduler or MicroBatchScheduler(MicroBatchConfig())
        self.cache = cache
        self.label = label
        self.admission = admission
        self.engine_factory = engine_factory
        self.deployment = tuple(deployment)
        self.scaler = scaler
        self.telemetry = telemetry
        if telemetry is not None:
            attach_telemetry(self.engine, telemetry)
            self.scheduler.telemetry = telemetry
            if scaler is not None and hasattr(scaler, "attach_telemetry"):
                # Forecast-driven scalers emit fit instants and
                # repro_forecast_* metrics into the session's trace.
                scaler.attach_telemetry(telemetry)
        if faults is not None or resilience is not None:
            plan = faults if faults is not None else FaultPlan(())
            self.faults: Optional[FaultContext] = FaultContext(
                plan,
                resilience=resilience,
                telemetry=telemetry,
                process=label,
            )
            attach_faults(self.engine, self.faults)
            self.scheduler.faults = self.faults
        else:
            self.faults = None
        self.price_book = price_book
        self.engine_kind = engine_kind
        self.scale_events: List[ScaleEvent] = []
        self._warm_cost = Cost()
        self._pending_migration = Cost()
        self._reported_events = 0  # scale events already returned by a run
        self._retired_spill = (0, 0)  # totals from engines already swapped out

    def _query_for(self, request: Request) -> ServeQuery:
        return self.workload[request.user % len(self.workload)]

    def warm(self, users: Sequence[int]) -> Cost:
        """Pre-serve ``users``' queries and seed the cache with the results.

        The warm-up models a deployment's ramp phase: the most popular
        queries (the Zipf head a trace analysis predicts) are served once
        off the critical path and their results written into the cache, so
        the session opens hot instead of paying the cold-start misses.
        Serving and fill energy are real work -- they are charged to the
        next :meth:`run`'s ledger under "Warm-up".  Returns that cost.
        """
        if self.cache is None:
            raise ValueError("cannot warm a session without a cache")
        pairs = []
        serve_cost = Cost()
        seen = set()
        for user in users:
            query = self.workload[user % len(self.workload)]
            if query in seen:
                continue
            seen.add(query)
            result = self.engine.recommend_query(query)
            serve_cost = serve_cost.then(result.cost)
            pairs.append((query, (tuple(result.items), tuple(result.scores))))
        fill_cost = self.cache.warm(pairs)
        self._warm_cost = self._warm_cost.then(serve_cost).then(fill_cost)
        return self._warm_cost

    def scale_to(
        self, shards: int, replicas: int, now_s: float = 0.0
    ) -> Optional[ScaleEvent]:
        """Swap the deployment online, paying the state migration.

        Builds the new engine through ``engine_factory``, computes the
        migration bill (re-partitioned rows + replica-slice copies,
        priced by :func:`~repro.serving.shard.migration_cost` from the
        engine's own corpus shape), invalidates cache entries referencing
        moved ranges, and queues the cost for the next dispatched batch
        (or the next :meth:`run`, if called between runs).  Returns the
        recorded event, or None when the deployment is unchanged.
        """
        if self.engine_factory is None:
            raise ValueError("online scaling needs an engine_factory")
        if shards < 1 or replicas < 1:
            raise ValueError(
                f"deployment axes must be >= 1, got ({shards}, {replicas})"
            )
        new = (shards, replicas)
        if new == self.deployment:
            return None
        primary = _primary_engine(self.engine)
        try:
            num_items = primary.filtering_model.config.num_items
            embedding_dim = primary.filtering_model.config.embedding_dim
            signature_bits = primary.signature_bits
        except AttributeError as error:
            raise ValueError(
                "engine does not expose corpus metadata "
                "(filtering_model/signature_bits) needed to price migration"
            ) from error
        moved_ids, total_rows = plan_scale_migration(
            num_items, self.deployment, new
        )
        cost = migration_cost(total_rows, embedding_dim, signature_bits)
        invalidated = 0
        if self.cache is not None and moved_ids.size:
            invalidated, scan_cost = self.cache.invalidate(moved_ids)
            cost = cost.then(scan_cost)
        self._retire_engine_stats()
        self.engine = self.engine_factory(shards, replicas)
        if self.telemetry is not None:
            # The factory built a fresh engine tree; without re-attachment
            # the swap would silently drop instrumentation mid-run.
            attach_telemetry(self.engine, self.telemetry)
        if self.faults is not None:
            # Same for the fault plane: new replicas must inherit the
            # failure hooks (and the breakers keyed by site survive).
            attach_faults(self.engine, self.faults)
        event = ScaleEvent(
            time_s=now_s,
            old_deployment=self.deployment,
            new_deployment=new,
            moved_rows=total_rows,
            invalidated_entries=invalidated,
            cost=cost,
        )
        self.deployment = new
        self.scale_events.append(event)
        self._pending_migration = self._pending_migration.then(cost)
        if self.telemetry is not None and self.telemetry.enabled:
            self.telemetry.tracer.instant(
                "scale-event",
                now_s,
                old_deployment=list(event.old_deployment),
                new_deployment=list(event.new_deployment),
                moved_rows=event.moved_rows,
                invalidated_entries=event.invalidated_entries,
                migration_energy_pj=event.cost.energy_pj,
            )
            self.telemetry.metrics.counter(
                "repro_scale_events_total", "Online deployment changes."
            ).inc(process=self.label)
        return event

    def _retire_engine_stats(self) -> None:
        """Fold the outgoing engine's spill counters into the session."""
        spilled, assigned = _collect_spill(self.engine)
        retired_spilled, retired_assigned = self._retired_spill
        self._retired_spill = (retired_spilled + spilled, retired_assigned + assigned)

    def _spill_stats(self) -> Optional[Dict[str, object]]:
        spilled, assigned = _collect_spill(self.engine)
        retired_spilled, retired_assigned = self._retired_spill
        spilled += retired_spilled
        assigned += retired_assigned
        if assigned == 0:
            return None
        return {
            "assigned": assigned,
            "spilled": spilled,
            "spill_rate": spilled / assigned,
        }

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Drive the scheduler over ``requests`` and collect the records."""
        ledger = Ledger(name=self.label)
        if self._warm_cost.energy_pj > 0.0 or self._warm_cost.latency_ns > 0.0:
            # One-time work: charge it to this run only, not to every
            # later run of a reused session.
            ledger.charge("Warm-up", self._warm_cost)
            self._warm_cost = Cost()
        records: List[RequestRecord] = []
        # A scale_to issued between runs queued its migration for this
        # run's ledger, so this run also reports its event.
        run_events_start = self._reported_events

        telemetry = self.telemetry
        observing = telemetry is not None and telemetry.enabled
        tracer = telemetry.tracer if telemetry is not None else None
        if observing:
            tracer.set_process(self.label)
            metrics = telemetry.metrics
            m_batches = metrics.counter(
                "repro_batches_total", "Dispatched micro-batches."
            )
            m_requests = metrics.counter(
                "repro_requests_total", "Requests ruled on, by outcome."
            )
            m_cache = metrics.counter(
                "repro_cache_lookups_total", "Result-cache lookups, by result."
            )
            m_batch_size = metrics.histogram(
                "repro_batch_size",
                "Requests per dispatched micro-batch.",
                BATCH_SIZE_BUCKETS,
            )
            m_queue_depth = metrics.histogram(
                "repro_queue_depth",
                "Backlog (arrived, unserved requests) at batch dispatch.",
                BATCH_SIZE_BUCKETS,
            )
            m_stage_latency = metrics.histogram(
                "repro_stage_latency_seconds",
                "Serve-path latency by stage.",
                LATENCY_BUCKETS_S,
            )
            m_stage_energy = metrics.counter(
                "repro_stage_energy_pj", "Serve-path energy by stage."
            )
            m_request_latency = metrics.histogram(
                "repro_request_latency_seconds",
                "End-to-end request latency, by outcome.",
                LATENCY_BUCKETS_S,
            )
            # Bind the hot-loop series once: the label set of every
            # per-batch observation is known here, and label-key hashing
            # per call is most of what tracing would otherwise cost.
            b_batches = m_batches.bind(process=self.label)
            b_cache_hit = m_cache.bind(process=self.label, result="hit")
            b_cache_miss = m_cache.bind(process=self.label, result="miss")
            b_batch_size = m_batch_size.bind(process=self.label)
            b_queue_depth = m_queue_depth.bind(process=self.label)
            # "retry"/"hedge" bindings are lazy (no series until the
            # first observation), so a zero-fault run's export stays
            # byte-identical to a run without a fault plane.
            _stages = (
                "queue",
                "cache_lookup",
                "engine",
                "cache_fill",
                "migration",
                "retry",
                "hedge",
            )
            b_stage_latency = {
                stage: m_stage_latency.bind(process=self.label, stage=stage)
                for stage in _stages
            }
            b_stage_energy = {
                stage: m_stage_energy.bind(process=self.label, stage=stage)
                for stage in _stages
            }
            b_requests = {
                outcome: m_requests.bind(process=self.label, outcome=outcome)
                for outcome in ("served", "degraded", "shed", "failed")
            }
            b_request_latency = {
                outcome: m_request_latency.bind(process=self.label, outcome=outcome)
                for outcome in ("served", "degraded", "failed")
            }
        batch_counter = 0

        def service(batch: Batch) -> float:
            nonlocal batch_counter
            batch_index = batch_counter
            batch_counter += 1
            traced = tracer.start_batch(batch_index) if tracer is not None else False
            if traced:
                # Root span: first member's arrival (members are taken in
                # arrival order) through end of engine occupancy.
                tracer.open(
                    "batch",
                    batch.requests[0].arrival_s,
                    category="serve",
                    track="main",
                    batch_index=batch_index,
                    size=len(batch.requests),
                    queue_depth=batch.queue_depth,
                )
                tracer.add(
                    "queue",
                    batch.open_s,
                    batch.dispatch_s,
                    category="queue",
                    waiting=len(batch.requests),
                    queue_depth=batch.queue_depth,
                )
            if observing:
                b_batches.inc()
                b_batch_size.observe(len(batch.requests))
                b_queue_depth.observe(batch.queue_depth)
                b_stage_latency["queue"].observe(batch.dispatch_s - batch.open_s)
            batch_records: List[RequestRecord] = []
            queries = [self._query_for(request) for request in batch.requests]
            outcomes = self._admission_outcomes(batch)
            if traced:
                tracer.add(
                    "admission",
                    batch.dispatch_s,
                    batch.dispatch_s,
                    category="admission",
                    accepted=outcomes.count(ACCEPT),
                    degraded=outcomes.count(DEGRADE),
                    shed=outcomes.count(SHED),
                )
            degraded_k = (
                self.admission.config.degraded_top_k
                if self.admission is not None
                else None
            )
            active = [
                position
                for position, outcome in enumerate(outcomes)
                if outcome != SHED
            ]
            fault_ctx = self.faults
            if fault_ctx is not None:
                # Cache-flush events scheduled before this dispatch fire
                # now: the store empties and the batch takes the misses.
                for flush_event in fault_ctx.injector.take_flushes(
                    batch.dispatch_s
                ):
                    dropped = self.cache.flush() if self.cache is not None else 0
                    fault_ctx.counters["cache_flushes"] += 1
                    fault_ctx.counters["flushed_entries"] += dropped
                    fault_ctx.record_event(
                        "cache-flush", flush_event.start_s, dropped=dropped
                    )
            hit_values: Dict[int, Tuple[Tuple[int, ...], Tuple[float, ...]]] = {}
            lookup_cost = Cost()
            if self.cache is not None:
                for position in active:
                    value, cost = self.cache.lookup(queries[position])
                    ledger.charge("Cache", cost)
                    lookup_cost = lookup_cost.then(cost)
                    if value is not None:
                        hit_values[position] = value
                if traced:
                    tracer.add(
                        "cache-lookup",
                        batch.dispatch_s,
                        batch.dispatch_s + lookup_cost.latency_s,
                        category="cache",
                        lookups=len(active),
                        hits=len(hit_values),
                        energy_pj=lookup_cost.energy_pj,
                    )
                if observing:
                    b_cache_hit.inc(len(hit_values))
                    b_cache_miss.inc(len(active) - len(hit_values))
                    b_stage_latency["cache_lookup"].observe(lookup_cost.latency_s)
                    b_stage_energy["cache_lookup"].inc(lookup_cost.energy_pj)

            miss_positions = [
                position for position in active if position not in hit_values
            ]
            serve_cost = Cost()
            miss_results = {}
            if miss_positions:
                # Deduplicate identical queries inside the batch: the engine
                # serves each distinct query once (the micro-batch is the
                # natural dedup window).
                distinct: Dict[ServeQuery, List[int]] = {}
                for position in miss_positions:
                    distinct.setdefault(queries[position], []).append(position)
                engine_start_s = batch.dispatch_s + lookup_cost.latency_s
                if traced:
                    # Open before serve_batch so routers/engines record
                    # their shard, replica, kernel and merge children
                    # inside this span.
                    tracer.open(
                        "engine",
                        engine_start_s,
                        category="serve",
                        queries=len(distinct),
                        deduplicated=len(miss_positions) - len(distinct),
                    )
                if fault_ctx is not None:
                    # Anchor the fault clock: engines and routers place
                    # every serve attempt of this round at this instant.
                    fault_ctx.begin_round(engine_start_s)
                    try:
                        batch_result = self.engine.serve_batch(list(distinct))
                    except FaultError as fault:
                        # A bare (router-less) engine has no peer to fail
                        # over to: the whole miss batch fails after its
                        # detection latency and the wasted energy is
                        # re-billed below.
                        if fault.kind == ERROR:
                            detect_s = fault.cost.latency_s
                            fault_ctx.counters["error_hits"] += 1
                        else:
                            estimate = getattr(
                                self.engine, "expected_query_latency_s", None
                            )
                            detect_s = (
                                fault_ctx.resilience.attempt_timeout_s(
                                    estimate, len(distinct)
                                )
                                if fault_ctx.resilience is not None
                                else 0.0
                            )
                            fault_ctx.counters["crash_hits"] += 1
                        fault_ctx.record_event(
                            "attempt-failed",
                            engine_start_s + detect_s,
                            kind=fault.kind,
                            shard=0,
                            replica=0,
                        )
                        fault_ctx.add_retry_cost(
                            Cost(
                                energy_pj=fault.cost.energy_pj,
                                latency_ns=detect_s * 1e9,
                            )
                        )
                        batch_result = BatchResult(
                            results=[failed_query_result() for _ in distinct],
                            cost=Cost(latency_ns=detect_s * 1e9),
                        )
                else:
                    batch_result = self.engine.serve_batch(list(distinct))
                serve_cost = batch_result.cost
                if traced:
                    tracer.close(
                        engine_start_s + serve_cost.latency_s,
                        energy_pj=serve_cost.energy_pj,
                    )
                if observing:
                    b_stage_latency["engine"].observe(serve_cost.latency_s)
                    b_stage_energy["engine"].inc(serve_cost.energy_pj)
                ledger.charge("Serve", serve_cost)
                if fault_ctx is not None:
                    # Re-bill recovery work accumulated during the serve:
                    # failed-attempt + retry energy under "Retry", hedge
                    # duplicates under "Hedge".  Both are zero (and charge
                    # nothing -- the ledger stays byte-identical) when no
                    # fault fired.
                    recovery = fault_ctx.take_retry_cost()
                    if recovery.energy_pj or recovery.latency_ns:
                        ledger.charge("Retry", recovery)
                        if observing:
                            b_stage_latency["retry"].observe(recovery.latency_s)
                            b_stage_energy["retry"].inc(recovery.energy_pj)
                    hedge = fault_ctx.take_hedge_cost()
                    if hedge.energy_pj or hedge.latency_ns:
                        ledger.charge("Hedge", hedge)
                        if observing:
                            b_stage_latency["hedge"].observe(hedge.latency_s)
                            b_stage_energy["hedge"].inc(hedge.energy_pj)
                fill_cost = Cost()
                for query, result in zip(distinct, batch_result.results):
                    for position in distinct[query]:
                        miss_results[position] = result
                    if self.cache is not None and not (
                        result.failed or result.partial
                    ):
                        # Never cache a dropped or partial answer: a
                        # recovered fleet must not keep serving the
                        # degraded result from cache.
                        fill_cost = fill_cost.then(
                            self.cache.insert(
                                query, (tuple(result.items), tuple(result.scores))
                            )
                        )
                if self.cache is not None and fill_cost.latency_ns > 0.0:
                    ledger.charge("Cache", fill_cost)
                    fill_start_s = engine_start_s + serve_cost.latency_s
                    if traced:
                        tracer.add(
                            "cache-fill",
                            fill_start_s,
                            fill_start_s + fill_cost.latency_s,
                            category="cache",
                            fills=len(distinct),
                            energy_pj=fill_cost.energy_pj,
                        )
                    if observing:
                        b_stage_latency["cache_fill"].observe(fill_cost.latency_s)
                        b_stage_energy["cache_fill"].inc(fill_cost.energy_pj)
                serve_cost = serve_cost.then(fill_cost)

            occupancy = lookup_cost.then(serve_cost)
            for position, request in enumerate(batch.requests):
                degraded = outcomes[position] == DEGRADE
                if outcomes[position] == SHED:
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=batch.dispatch_s,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=(),
                            shed=True,
                        )
                    )
                elif position in hit_values:
                    items, _scores = hit_values[position]
                    completion = batch.dispatch_s + lookup_cost.latency_s
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=True,
                            items=tuple(items)[:degraded_k] if degraded else tuple(items),
                            degraded=degraded,
                        )
                    )
                else:
                    completion = batch.dispatch_s + occupancy.latency_s
                    result = miss_results[position]
                    if result.failed:
                        fault_ctx.counters["failed_queries"] += 1
                        batch_records.append(
                            RequestRecord(
                                request=request,
                                completion_s=completion,
                                batch_size=len(batch.requests),
                                cache_hit=False,
                                items=(),
                                failed=True,
                            )
                        )
                        continue
                    items = tuple(result.items)
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=items[:degraded_k] if degraded else items,
                            # A partial scatter-gather is served degraded:
                            # the client got an answer with reduced recall.
                            degraded=degraded or result.partial,
                        )
                    )
            records.extend(batch_records)
            if traced or observing:
                trace_request = tracer.add if traced else None
                for record in batch_records:
                    outcome = (
                        "shed"
                        if record.shed
                        else "failed"
                        if record.failed
                        else "degraded"
                        if record.degraded
                        else "served"
                    )
                    if trace_request is not None:
                        request = record.request
                        trace_request(
                            "request",
                            request.arrival_s,
                            record.completion_s,
                            category="serve",
                            track="requests",
                            request_id=request.request_id,
                            user=request.user,
                            tenant=request.tenant,
                            outcome=outcome,
                            cache_hit=record.cache_hit,
                        )
                    if observing:
                        b_requests[outcome].inc()
                        if not record.shed:
                            b_request_latency[outcome].observe(record.latency_s)

            def drain(current: Cost) -> Cost:
                pending = self._pending_migration
                drained = self._drain_migration(ledger, current)
                if drained is not current:
                    start_s = batch.dispatch_s + current.latency_s
                    if traced:
                        tracer.add(
                            "migration",
                            start_s,
                            start_s + pending.latency_s,
                            category="control",
                            energy_pj=pending.energy_pj,
                        )
                    if observing:
                        b_stage_latency["migration"].observe(pending.latency_s)
                        b_stage_energy["migration"].inc(pending.energy_pj)
                return drained

            # Pay any migration queued by a pre-run scale_to, then let the
            # online scaler react to what this batch measured.
            occupancy = drain(occupancy)
            if self.scaler is not None:
                end_s = batch.dispatch_s + occupancy.latency_s
                decision = self.scaler.observe(
                    batch, occupancy.latency_s, batch_records, self.deployment
                )
                if decision is not None and tuple(decision) != self.deployment:
                    self.scale_to(*decision, now_s=end_s)
                    occupancy = drain(occupancy)
            if traced:
                tracer.close(batch.dispatch_s + occupancy.latency_s)
            if tracer is not None:
                tracer.end_batch()
            return occupancy.latency_s

        batches = self.scheduler.run(requests, service)
        records.sort(key=lambda record: record.request.request_id)
        self._reported_events = len(self.scale_events)
        price_ledger = None
        if self.price_book is not None:
            # Dollar accounting is post-processing: the run is already
            # fully recorded, pricing only re-reads the rows.
            makespan_s = (
                max(record.completion_s for record in records)
                - min(record.request.arrival_s for record in records)
                if records
                else 0.0
            )
            price_ledger = price_serving_run(
                ledger,
                self.price_book,
                engine_kind=self.engine_kind,
                cache_stats=(
                    self.cache.stats() if self.cache is not None else None
                ),
                duration_s=makespan_s,
                name=self.label,
            )
        if observing:
            # Join the aggregate plane against the run's actual ledger and
            # cache/spill counters so the exported textfile can never
            # disagree with the console report.
            telemetry.metrics.record_ledger(ledger, process=self.label)
            if price_ledger is not None:
                telemetry.metrics.record_price_ledger(
                    price_ledger, process=self.label
                )
            if self.cache is not None:
                cache_gauge = telemetry.metrics.gauge(
                    "repro_cache_state", "Result-cache counters at end of run."
                )
                for key, value in self.cache.stats().items():
                    cache_gauge.set(
                        float(value), process=self.label, counter=key
                    )
            spill_stats = self._spill_stats()
            if spill_stats is not None:
                spill_gauge = telemetry.metrics.gauge(
                    "repro_spillover_state", "Spillover routing at end of run."
                )
                for key in ("assigned", "spilled", "spill_rate"):
                    spill_gauge.set(
                        float(spill_stats[key]), process=self.label, counter=key
                    )
            if self.faults is not None and (
                any(self.faults.counters.values()) or self.faults.retries_used
            ):
                # Created only when a fault actually fired, so a run over
                # an empty plan exports byte-identical telemetry.
                fault_gauge = telemetry.metrics.gauge(
                    "repro_fault_state", "Fault-plane counters at end of run."
                )
                for key, value in self.faults.counters.items():
                    fault_gauge.set(
                        float(value), process=self.label, counter=key
                    )
                fault_gauge.set(
                    float(self.faults.retries_used),
                    process=self.label,
                    counter="retries_used",
                )
                fault_gauge.set(
                    self.faults.recall_loss,
                    process=self.label,
                    counter="recall_loss",
                )
        return ServingResult(
            label=self.label,
            records=records,
            batches=batches,
            ledger=ledger,
            cache_stats=self.cache.stats() if self.cache is not None else None,
            admission_stats=(
                self.admission.stats() if self.admission is not None else None
            ),
            spill_stats=self._spill_stats(),
            fault_stats=self.faults.stats() if self.faults is not None else None,
            price_ledger=price_ledger,
            scale_events=list(self.scale_events[run_events_start:]),
        )

    def _admission_outcomes(self, batch: Batch) -> List[str]:
        """Front-door rulings for every request in the batch."""
        if self.admission is None:
            return [ACCEPT] * len(batch.requests)
        expected_s = getattr(self.engine, "expected_query_latency_s", None)
        return [
            self.admission.decide(request, batch.dispatch_s, expected_s)
            for request in batch.requests
        ]

    def _drain_migration(self, ledger: Ledger, occupancy: Cost) -> Cost:
        """Charge queued migration work and stall the data plane with it."""
        if (
            self._pending_migration.energy_pj == 0.0
            and self._pending_migration.latency_ns == 0.0
        ):
            return occupancy
        ledger.charge("Migration", self._pending_migration)
        occupancy = occupancy.then(self._pending_migration)
        self._pending_migration = Cost()
        return occupancy
