"""The serving simulation loop: traffic in, SLO report out.

A :class:`ServingSession` wires the pieces together: it maps each
request's user to their :class:`~repro.core.pipeline.ServeQuery`, lets the
micro-batch scheduler drive the engine, short-circuits repeated queries
through the LRU cache, and accounts every joule (engine serve, cache
probes, cache fills) in one session ledger.

Timing model of one dispatched batch:

* an attached :class:`~repro.serving.admission.AdmissionController`
  rules first: shed requests complete (rejected) at dispatch and never
  touch the cache or engine; degraded ones are served with a reduced
  top-k;
* cache lookups run next; hits complete at ``dispatch + lookup latency``
  (they never wait for the engine);
* the remaining misses are served as one engine micro-batch; they
  complete when the engine batch finishes;
* the engine is occupied for lookups + miss batch + cache fills, which is
  what the scheduler's free-time clock advances by.

Online scale events
-------------------
With an ``engine_factory`` the deployment is no longer fixed for the
run: :meth:`ServingSession.scale_to` swaps the engine for a new
(shards, replicas) build *mid-run*, charging the state migration --
re-partitioned item rows streamed into their new shards, replica-slice
copies (:func:`~repro.serving.shard.plan_scale_migration`) -- to the
session ledger under "Migration", and invalidating cache entries that
reference moved item ranges.  The swap stalls the data plane: the
migration latency extends the batch occupancy the scheduler sees, so
scaling out under pressure costs real tail latency *now* in exchange for
capacity *afterwards* -- no simulation restart, no free lunch.  A
``scaler`` (e.g. :class:`~repro.serving.autoscaler.OnlineScaler` or a
:class:`~repro.serving.autoscaler.ScheduledScalePlan`) automates the
trigger after every batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.serving.admission import ACCEPT, DEGRADE, SHED, AdmissionController
from repro.serving.cache import ServingCache
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.shard import migration_cost, plan_scale_migration
from repro.serving.slo import (
    RequestRecord,
    SLOReport,
    summarize,
    summarize_tenants,
)
from repro.serving.traffic import Request

__all__ = ["ScaleEvent", "ServingResult", "ServingSession"]


@dataclass(frozen=True)
class ScaleEvent:
    """One online deployment change and what it cost."""

    time_s: float
    old_deployment: Tuple[int, int]
    new_deployment: Tuple[int, int]
    moved_rows: int
    invalidated_entries: int
    cost: Cost


@dataclass
class ServingResult:
    """Everything one simulated session produced."""

    label: str
    records: List[RequestRecord]
    batches: List[Batch]
    ledger: Ledger
    cache_stats: Optional[Dict[str, float]] = None
    admission_stats: Optional[Dict[str, object]] = None
    spill_stats: Optional[Dict[str, object]] = None
    scale_events: List[ScaleEvent] = field(default_factory=list)
    _report: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def report(self) -> SLOReport:
        if self._report is None:
            self._report = summarize(self.records, self.ledger, label=self.label)
        return self._report

    @property
    def tenant_reports(self) -> Dict[str, SLOReport]:
        """Per-tenant SLO reports (energy attributed pro rata)."""
        return summarize_tenants(self.records, self.ledger, label=self.label)


def _primary_engine(engine) -> object:
    """Descend routers (shards[0] / replicas[0]) to a concrete engine."""
    seen = 0
    while seen < 8:  # routers never nest deeper than shard -> replica
        if hasattr(engine, "shards"):
            engine = engine.shards[0]
        elif hasattr(engine, "replicas"):
            engine = engine.replicas[0]
        else:
            return engine
        seen += 1
    return engine


def _collect_spill(engine) -> Tuple[int, int]:
    """(spilled, assigned) totals across an engine's replica groups."""
    spilled = 0
    assigned = 0
    groups = engine.shards if hasattr(engine, "shards") else [engine]
    for group in groups:
        if hasattr(group, "spilled"):
            spilled += group.spilled
            assigned += sum(group.assigned)
    return spilled, assigned


class ServingSession:
    """Simulate online serving of a request stream against one engine."""

    def __init__(
        self,
        engine,
        workload: Sequence[ServeQuery],
        scheduler: Optional[MicroBatchScheduler] = None,
        cache: Optional[ServingCache] = None,
        label: str = "session",
        admission: Optional[AdmissionController] = None,
        engine_factory: Optional[Callable[[int, int], object]] = None,
        deployment: Tuple[int, int] = (1, 1),
        scaler=None,
    ):
        """``engine`` is anything with ``serve_batch`` (a pipeline engine
        or a :class:`~repro.serving.shard.ShardedEngine`); ``workload[u]``
        is the query user ``u`` issues (users wrap modulo the workload).

        ``engine_factory(shards, replicas)`` rebuilds the engine for an
        online scale event (required by :meth:`scale_to` and by a
        ``scaler``); ``deployment`` names the (shards, replicas) the
        initial engine was built with.  ``scaler`` is consulted after
        every batch with the observed records and may return a new
        deployment (see :mod:`repro.serving.autoscaler`).
        """
        if not workload:
            raise ValueError("workload must contain at least one query")
        if scaler is not None and engine_factory is None:
            raise ValueError("an online scaler needs an engine_factory")
        if min(deployment) < 1:
            raise ValueError(f"deployment axes must be >= 1, got {deployment}")
        self.engine = engine
        self.workload = list(workload)
        self.scheduler = scheduler or MicroBatchScheduler(MicroBatchConfig())
        self.cache = cache
        self.label = label
        self.admission = admission
        self.engine_factory = engine_factory
        self.deployment = tuple(deployment)
        self.scaler = scaler
        self.scale_events: List[ScaleEvent] = []
        self._warm_cost = Cost()
        self._pending_migration = Cost()
        self._reported_events = 0  # scale events already returned by a run
        self._retired_spill = (0, 0)  # totals from engines already swapped out

    def _query_for(self, request: Request) -> ServeQuery:
        return self.workload[request.user % len(self.workload)]

    def warm(self, users: Sequence[int]) -> Cost:
        """Pre-serve ``users``' queries and seed the cache with the results.

        The warm-up models a deployment's ramp phase: the most popular
        queries (the Zipf head a trace analysis predicts) are served once
        off the critical path and their results written into the cache, so
        the session opens hot instead of paying the cold-start misses.
        Serving and fill energy are real work -- they are charged to the
        next :meth:`run`'s ledger under "Warm-up".  Returns that cost.
        """
        if self.cache is None:
            raise ValueError("cannot warm a session without a cache")
        pairs = []
        serve_cost = Cost()
        seen = set()
        for user in users:
            query = self.workload[user % len(self.workload)]
            if query in seen:
                continue
            seen.add(query)
            result = self.engine.recommend_query(query)
            serve_cost = serve_cost.then(result.cost)
            pairs.append((query, (tuple(result.items), tuple(result.scores))))
        fill_cost = self.cache.warm(pairs)
        self._warm_cost = self._warm_cost.then(serve_cost).then(fill_cost)
        return self._warm_cost

    def scale_to(
        self, shards: int, replicas: int, now_s: float = 0.0
    ) -> Optional[ScaleEvent]:
        """Swap the deployment online, paying the state migration.

        Builds the new engine through ``engine_factory``, computes the
        migration bill (re-partitioned rows + replica-slice copies,
        priced by :func:`~repro.serving.shard.migration_cost` from the
        engine's own corpus shape), invalidates cache entries referencing
        moved ranges, and queues the cost for the next dispatched batch
        (or the next :meth:`run`, if called between runs).  Returns the
        recorded event, or None when the deployment is unchanged.
        """
        if self.engine_factory is None:
            raise ValueError("online scaling needs an engine_factory")
        if shards < 1 or replicas < 1:
            raise ValueError(
                f"deployment axes must be >= 1, got ({shards}, {replicas})"
            )
        new = (shards, replicas)
        if new == self.deployment:
            return None
        primary = _primary_engine(self.engine)
        try:
            num_items = primary.filtering_model.config.num_items
            embedding_dim = primary.filtering_model.config.embedding_dim
            signature_bits = primary.signature_bits
        except AttributeError as error:
            raise ValueError(
                "engine does not expose corpus metadata "
                "(filtering_model/signature_bits) needed to price migration"
            ) from error
        moved_ids, total_rows = plan_scale_migration(
            num_items, self.deployment, new
        )
        cost = migration_cost(total_rows, embedding_dim, signature_bits)
        invalidated = 0
        if self.cache is not None and moved_ids.size:
            invalidated, scan_cost = self.cache.invalidate(moved_ids)
            cost = cost.then(scan_cost)
        self._retire_engine_stats()
        self.engine = self.engine_factory(shards, replicas)
        event = ScaleEvent(
            time_s=now_s,
            old_deployment=self.deployment,
            new_deployment=new,
            moved_rows=total_rows,
            invalidated_entries=invalidated,
            cost=cost,
        )
        self.deployment = new
        self.scale_events.append(event)
        self._pending_migration = self._pending_migration.then(cost)
        return event

    def _retire_engine_stats(self) -> None:
        """Fold the outgoing engine's spill counters into the session."""
        spilled, assigned = _collect_spill(self.engine)
        retired_spilled, retired_assigned = self._retired_spill
        self._retired_spill = (retired_spilled + spilled, retired_assigned + assigned)

    def _spill_stats(self) -> Optional[Dict[str, object]]:
        spilled, assigned = _collect_spill(self.engine)
        retired_spilled, retired_assigned = self._retired_spill
        spilled += retired_spilled
        assigned += retired_assigned
        if assigned == 0:
            return None
        return {
            "assigned": assigned,
            "spilled": spilled,
            "spill_rate": spilled / assigned,
        }

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Drive the scheduler over ``requests`` and collect the records."""
        ledger = Ledger(name=self.label)
        if self._warm_cost.energy_pj > 0.0 or self._warm_cost.latency_ns > 0.0:
            # One-time work: charge it to this run only, not to every
            # later run of a reused session.
            ledger.charge("Warm-up", self._warm_cost)
            self._warm_cost = Cost()
        records: List[RequestRecord] = []
        # A scale_to issued between runs queued its migration for this
        # run's ledger, so this run also reports its event.
        run_events_start = self._reported_events

        def service(batch: Batch) -> float:
            batch_records: List[RequestRecord] = []
            queries = [self._query_for(request) for request in batch.requests]
            outcomes = self._admission_outcomes(batch)
            degraded_k = (
                self.admission.config.degraded_top_k
                if self.admission is not None
                else None
            )
            active = [
                position
                for position, outcome in enumerate(outcomes)
                if outcome != SHED
            ]
            hit_values: Dict[int, Tuple[Tuple[int, ...], Tuple[float, ...]]] = {}
            lookup_cost = Cost()
            if self.cache is not None:
                for position in active:
                    value, cost = self.cache.lookup(queries[position])
                    ledger.charge("Cache", cost)
                    lookup_cost = lookup_cost.then(cost)
                    if value is not None:
                        hit_values[position] = value

            miss_positions = [
                position for position in active if position not in hit_values
            ]
            serve_cost = Cost()
            miss_results = {}
            if miss_positions:
                # Deduplicate identical queries inside the batch: the engine
                # serves each distinct query once (the micro-batch is the
                # natural dedup window).
                distinct: Dict[ServeQuery, List[int]] = {}
                for position in miss_positions:
                    distinct.setdefault(queries[position], []).append(position)
                batch_result = self.engine.serve_batch(list(distinct))
                serve_cost = batch_result.cost
                ledger.charge("Serve", serve_cost)
                fill_cost = Cost()
                for query, result in zip(distinct, batch_result.results):
                    for position in distinct[query]:
                        miss_results[position] = result
                    if self.cache is not None:
                        fill_cost = fill_cost.then(
                            self.cache.insert(
                                query, (tuple(result.items), tuple(result.scores))
                            )
                        )
                if self.cache is not None and fill_cost.latency_ns > 0.0:
                    ledger.charge("Cache", fill_cost)
                serve_cost = serve_cost.then(fill_cost)

            occupancy = lookup_cost.then(serve_cost)
            for position, request in enumerate(batch.requests):
                degraded = outcomes[position] == DEGRADE
                if outcomes[position] == SHED:
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=batch.dispatch_s,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=(),
                            shed=True,
                        )
                    )
                elif position in hit_values:
                    items, _scores = hit_values[position]
                    completion = batch.dispatch_s + lookup_cost.latency_s
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=True,
                            items=tuple(items)[:degraded_k] if degraded else tuple(items),
                            degraded=degraded,
                        )
                    )
                else:
                    completion = batch.dispatch_s + occupancy.latency_s
                    items = tuple(miss_results[position].items)
                    batch_records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=items[:degraded_k] if degraded else items,
                            degraded=degraded,
                        )
                    )
            records.extend(batch_records)

            # Pay any migration queued by a pre-run scale_to, then let the
            # online scaler react to what this batch measured.
            occupancy = self._drain_migration(ledger, occupancy)
            if self.scaler is not None:
                end_s = batch.dispatch_s + occupancy.latency_s
                decision = self.scaler.observe(
                    batch, occupancy.latency_s, batch_records, self.deployment
                )
                if decision is not None and tuple(decision) != self.deployment:
                    self.scale_to(*decision, now_s=end_s)
                    occupancy = self._drain_migration(ledger, occupancy)
            return occupancy.latency_s

        batches = self.scheduler.run(requests, service)
        records.sort(key=lambda record: record.request.request_id)
        self._reported_events = len(self.scale_events)
        return ServingResult(
            label=self.label,
            records=records,
            batches=batches,
            ledger=ledger,
            cache_stats=self.cache.stats() if self.cache is not None else None,
            admission_stats=(
                self.admission.stats() if self.admission is not None else None
            ),
            spill_stats=self._spill_stats(),
            scale_events=list(self.scale_events[run_events_start:]),
        )

    def _admission_outcomes(self, batch: Batch) -> List[str]:
        """Front-door rulings for every request in the batch."""
        if self.admission is None:
            return [ACCEPT] * len(batch.requests)
        expected_s = getattr(self.engine, "expected_query_latency_s", None)
        return [
            self.admission.decide(request, batch.dispatch_s, expected_s)
            for request in batch.requests
        ]

    def _drain_migration(self, ledger: Ledger, occupancy: Cost) -> Cost:
        """Charge queued migration work and stall the data plane with it."""
        if (
            self._pending_migration.energy_pj == 0.0
            and self._pending_migration.latency_ns == 0.0
        ):
            return occupancy
        ledger.charge("Migration", self._pending_migration)
        occupancy = occupancy.then(self._pending_migration)
        self._pending_migration = Cost()
        return occupancy
