"""The serving simulation loop: traffic in, SLO report out.

A :class:`ServingSession` wires the pieces together: it maps each
request's user to their :class:`~repro.core.pipeline.ServeQuery`, lets the
micro-batch scheduler drive the engine, short-circuits repeated queries
through the LRU cache, and accounts every joule (engine serve, cache
probes, cache fills) in one session ledger.

Timing model of one dispatched batch:

* cache lookups run first; hits complete at ``dispatch + lookup latency``
  (they never wait for the engine);
* the remaining misses are served as one engine micro-batch; they
  complete when the engine batch finishes;
* the engine is occupied for lookups + miss batch + cache fills, which is
  what the scheduler's free-time clock advances by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import ServeQuery
from repro.energy.accounting import Cost, Ledger
from repro.serving.cache import ServingCache
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.slo import (
    RequestRecord,
    SLOReport,
    summarize,
    summarize_tenants,
)
from repro.serving.traffic import Request

__all__ = ["ServingResult", "ServingSession"]


@dataclass
class ServingResult:
    """Everything one simulated session produced."""

    label: str
    records: List[RequestRecord]
    batches: List[Batch]
    ledger: Ledger
    cache_stats: Optional[Dict[str, float]] = None
    _report: Optional[SLOReport] = field(default=None, repr=False)

    @property
    def report(self) -> SLOReport:
        if self._report is None:
            self._report = summarize(self.records, self.ledger, label=self.label)
        return self._report

    @property
    def tenant_reports(self) -> Dict[str, SLOReport]:
        """Per-tenant SLO reports (energy attributed pro rata)."""
        return summarize_tenants(self.records, self.ledger, label=self.label)


class ServingSession:
    """Simulate online serving of a request stream against one engine."""

    def __init__(
        self,
        engine,
        workload: Sequence[ServeQuery],
        scheduler: Optional[MicroBatchScheduler] = None,
        cache: Optional[ServingCache] = None,
        label: str = "session",
    ):
        """``engine`` is anything with ``serve_batch`` (a pipeline engine
        or a :class:`~repro.serving.shard.ShardedEngine`); ``workload[u]``
        is the query user ``u`` issues (users wrap modulo the workload)."""
        if not workload:
            raise ValueError("workload must contain at least one query")
        self.engine = engine
        self.workload = list(workload)
        self.scheduler = scheduler or MicroBatchScheduler(MicroBatchConfig())
        self.cache = cache
        self.label = label
        self._warm_cost = Cost()

    def _query_for(self, request: Request) -> ServeQuery:
        return self.workload[request.user % len(self.workload)]

    def warm(self, users: Sequence[int]) -> Cost:
        """Pre-serve ``users``' queries and seed the cache with the results.

        The warm-up models a deployment's ramp phase: the most popular
        queries (the Zipf head a trace analysis predicts) are served once
        off the critical path and their results written into the cache, so
        the session opens hot instead of paying the cold-start misses.
        Serving and fill energy are real work -- they are charged to the
        next :meth:`run`'s ledger under "Warm-up".  Returns that cost.
        """
        if self.cache is None:
            raise ValueError("cannot warm a session without a cache")
        pairs = []
        serve_cost = Cost()
        seen = set()
        for user in users:
            query = self.workload[user % len(self.workload)]
            if query in seen:
                continue
            seen.add(query)
            result = self.engine.recommend_query(query)
            serve_cost = serve_cost.then(result.cost)
            pairs.append((query, (tuple(result.items), tuple(result.scores))))
        fill_cost = self.cache.warm(pairs)
        self._warm_cost = self._warm_cost.then(serve_cost).then(fill_cost)
        return self._warm_cost

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Drive the scheduler over ``requests`` and collect the records."""
        ledger = Ledger(name=self.label)
        if self._warm_cost.energy_pj > 0.0 or self._warm_cost.latency_ns > 0.0:
            # One-time work: charge it to this run only, not to every
            # later run of a reused session.
            ledger.charge("Warm-up", self._warm_cost)
            self._warm_cost = Cost()
        records: List[RequestRecord] = []

        def service(batch: Batch) -> float:
            queries = [self._query_for(request) for request in batch.requests]
            hit_values: List[Optional[Tuple[Tuple[int, ...], Tuple[float, ...]]]] = []
            lookup_cost = Cost()
            if self.cache is not None:
                for query in queries:
                    value, cost = self.cache.lookup(query)
                    ledger.charge("Cache", cost)
                    lookup_cost = lookup_cost.then(cost)
                    hit_values.append(value)
            else:
                hit_values = [None] * len(queries)

            miss_positions = [
                position for position, value in enumerate(hit_values) if value is None
            ]
            serve_cost = Cost()
            miss_results = {}
            if miss_positions:
                # Deduplicate identical queries inside the batch: the engine
                # serves each distinct query once (the micro-batch is the
                # natural dedup window).
                distinct: Dict[ServeQuery, List[int]] = {}
                for position in miss_positions:
                    distinct.setdefault(queries[position], []).append(position)
                batch_result = self.engine.serve_batch(list(distinct))
                serve_cost = batch_result.cost
                ledger.charge("Serve", serve_cost)
                fill_cost = Cost()
                for query, result in zip(distinct, batch_result.results):
                    for position in distinct[query]:
                        miss_results[position] = result
                    if self.cache is not None:
                        fill_cost = fill_cost.then(
                            self.cache.insert(
                                query, (tuple(result.items), tuple(result.scores))
                            )
                        )
                if self.cache is not None and fill_cost.latency_ns > 0.0:
                    ledger.charge("Cache", fill_cost)
                serve_cost = serve_cost.then(fill_cost)

            occupancy = lookup_cost.then(serve_cost)
            for position, request in enumerate(batch.requests):
                if hit_values[position] is not None:
                    items, _scores = hit_values[position]
                    completion = batch.dispatch_s + lookup_cost.latency_s
                    records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=True,
                            items=tuple(items),
                        )
                    )
                else:
                    completion = batch.dispatch_s + occupancy.latency_s
                    records.append(
                        RequestRecord(
                            request=request,
                            completion_s=completion,
                            batch_size=len(batch.requests),
                            cache_hit=False,
                            items=tuple(miss_results[position].items),
                        )
                    )
            return occupancy.latency_s

        batches = self.scheduler.run(requests, service)
        records.sort(key=lambda record: record.request.request_id)
        return ServingResult(
            label=self.label,
            records=records,
            batches=batches,
            ledger=ledger,
            cache_stats=self.cache.stats() if self.cache is not None else None,
        )
