"""SLO-guarded admission control: shed or degrade before the queue does.

Scale-out has a ceiling: once the deployment is at its maximum (shards,
replicas) and the offered load still exceeds what honours the latency
contract, *every* request queueing politely means *every* request
missing its SLO.  The production answer is admission control at the
front door, decided per request at dispatch time from the latency budget
it has already burned:

* **accept** -- the projected completion (time already queued plus the
  engine's expected service time) fits the tenant's p95 budget;
* **degrade** -- the projection eats past ``degrade_watermark`` of the
  budget: the request is still served, but with a reduced top-k
  (``degraded_top_k``), trimming the answer rather than the user;
* **shed** -- the projection overruns ``shed_watermark`` of the budget:
  serving it would both miss its own contract and grow the queue for
  everyone behind it, so it is rejected immediately (the
  fail-fast / load-shedding discipline).

Decisions are free of hardware cost: the controller reads the dispatch
clock and the engine's occupancy EWMA
(:attr:`~repro.core.pipeline._EngineBase.expected_query_latency_s`),
both of which the serving session already tracks.  Before the engine has
served anything there is no evidence of overload, so everything is
accepted -- admission control reacts to measurements, never to priors.

Shed and degraded volumes are first-class outcomes: they flow into
:class:`~repro.serving.slo.SLOReport` (``shed_count`` /
``degraded_count`` and the matching rates), because a deployment that
"meets its p95" by rejecting a third of its traffic must say so.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.serving.traffic import Request

__all__ = [
    "ACCEPT",
    "DEGRADE",
    "SHED",
    "AdmissionConfig",
    "AdmissionController",
]

#: Admission outcomes (strings so records/reports stay plain data).
ACCEPT = "accept"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionConfig:
    """Contract and watermarks of one admission controller.

    ``slo_ms`` is the default per-request latency budget;
    ``tenant_slos_ms`` overrides it per tenant.  A request projected to
    finish inside ``degrade_watermark`` of its budget is accepted
    untouched; inside ``shed_watermark`` it is degraded to
    ``degraded_top_k`` results; beyond that it is shed.
    """

    slo_ms: float
    tenant_slos_ms: Mapping[str, float] = field(default_factory=dict)
    degrade_watermark: float = 0.6
    shed_watermark: float = 1.0
    degraded_top_k: int = 3

    def __post_init__(self) -> None:
        if self.slo_ms <= 0.0:
            raise ValueError(f"SLO must be positive, got {self.slo_ms}")
        for tenant, slo_ms in self.tenant_slos_ms.items():
            if slo_ms <= 0.0:
                raise ValueError(
                    f"tenant {tenant!r} SLO must be positive, got {slo_ms}"
                )
        if not 0.0 < self.degrade_watermark <= self.shed_watermark:
            raise ValueError(
                f"need 0 < degrade_watermark <= shed_watermark, got "
                f"({self.degrade_watermark}, {self.shed_watermark})"
            )
        if self.degraded_top_k < 1:
            raise ValueError(
                f"degraded top-k must be >= 1, got {self.degraded_top_k}"
            )

    def budget_ms(self, tenant: str) -> float:
        """The latency budget ``tenant``'s requests are held to."""
        return self.tenant_slos_ms.get(tenant, self.slo_ms)


class AdmissionController:
    """Per-request accept/degrade/shed decisions against SLO budgets."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.accepted = 0
        self.degraded = 0
        self.shed = 0
        #: Per-tenant outcome counts, e.g. ``by_tenant["movielens"]["shed"]``.
        self.by_tenant: Dict[str, Dict[str, int]] = {}

    def _count(self, tenant: str, outcome: str) -> None:
        bucket = self.by_tenant.setdefault(
            tenant, {ACCEPT: 0, DEGRADE: 0, SHED: 0}
        )
        bucket[outcome] += 1
        if outcome == ACCEPT:
            self.accepted += 1
        elif outcome == DEGRADE:
            self.degraded += 1
        else:
            self.shed += 1

    def decide(
        self,
        request: Request,
        dispatch_s: float,
        expected_service_s: Optional[float],
    ) -> str:
        """One request's outcome at dispatch time.

        ``expected_service_s`` is the engine's occupancy estimate (None
        before any serve: accept -- there is no overload evidence yet).
        The projection is conservative for cache hits, which complete
        faster than the engine estimate; a hot query may be degraded
        when it would have made it.  That bias is the safe direction
        under overload.
        """
        if dispatch_s < request.arrival_s:
            raise ValueError("dispatch cannot precede arrival")
        if expected_service_s is None:
            self._count(request.tenant, ACCEPT)
            return ACCEPT
        budget_ms = self.config.budget_ms(request.tenant)
        projected_ms = (
            (dispatch_s - request.arrival_s) + expected_service_s
        ) * 1e3
        if projected_ms > self.config.shed_watermark * budget_ms:
            outcome = SHED
        elif projected_ms > self.config.degrade_watermark * budget_ms:
            outcome = DEGRADE
        else:
            outcome = ACCEPT
        self._count(request.tenant, outcome)
        return outcome

    def stats(self) -> Dict[str, object]:
        """Counters snapshot for reports."""
        total = self.accepted + self.degraded + self.shed
        return {
            "decisions": total,
            "accepted": self.accepted,
            "degraded": self.degraded,
            "shed": self.shed,
            "shed_rate": self.shed / total if total else 0.0,
            "by_tenant": {
                tenant: dict(bucket) for tenant, bucket in self.by_tenant.items()
            },
        }
