"""Deterministic fault injection for the serving fleet.

Every replica in the simulator is immortal unless this module says
otherwise.  A :class:`FaultPlan` is a seeded, immutable schedule of
fault windows on the shared simulation clock -- replica crashes (with
restart at the window's end), whole-shard outages, stragglers
(per-replica latency multipliers), transient serve-error windows and
cache-flush instants.  A :class:`FaultInjector` answers the serving
stack's point-in-time questions ("is shard 1 replica 0 down at
t=0.42s?") from that schedule, so a chaos run is a pure function of
``(seed, plan)``: same plan, same traffic, same seed -> byte-identical
records, ledgers and telemetry.

The injector is *passive*: it never raises by itself.  The resilience
layer (:mod:`repro.serving.resilience`) plants a failure hook on every
leaf engine; the hook consults the injector at each serve attempt and
raises :class:`FaultError` when the attempt lands inside a fault
window.  Routers catch the error and decide -- fail the queries
(resilience off) or retry/hedge/fail over (resilience on).

An empty plan schedules nothing: every hook call is a comparison
against an empty tuple and returns its input cost object unchanged, so
a resilience-wrapped fleet over an empty plan is bit-identical to an
unwrapped one (the Hypothesis property in
``tests/serving/test_serving_resilience.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.energy.accounting import Cost

__all__ = [
    "CRASH",
    "SHARD_OUTAGE",
    "STRAGGLER",
    "ERROR",
    "CACHE_FLUSH",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultError",
    "chaos_scenario",
    "escalating_scenarios",
]

#: A replica is dead for the window; it restarts (cold but correct) at
#: the window's end.
CRASH = "crash"
#: Every replica of one shard is dark for the window.
SHARD_OUTAGE = "shard-outage"
#: The replica serves correctly but ``severity``x slower in the window.
STRAGGLER = "straggler"
#: Serve attempts inside the window do the work but return garbage
#: (a transient error the caller must discard).
ERROR = "error"
#: The result cache is wiped at ``start_s`` (a zero-duration instant).
CACHE_FLUSH = "cache-flush"

FAULT_KINDS = frozenset({CRASH, SHARD_OUTAGE, STRAGGLER, ERROR, CACHE_FLUSH})

#: Fault kinds that take a replica down (no work possible at all).
_DOWN_KINDS = (CRASH, SHARD_OUTAGE)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window on the simulation clock.

    ``shard`` addresses a shard index in the engine tree (a bare engine
    is shard 0); ``replica=None`` targets every replica of that shard
    (mandatory for :data:`SHARD_OUTAGE`, the point of the kind).
    ``severity`` is the latency multiplier of a :data:`STRAGGLER`
    window and ignored elsewhere.
    """

    kind: str
    start_s: float
    end_s: float
    shard: int = 0
    replica: Optional[int] = None
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start_s < 0.0:
            raise ValueError(f"fault cannot start before t=0 ({self.start_s})")
        if self.end_s < self.start_s:
            raise ValueError(
                f"fault window ends before it starts "
                f"({self.end_s} < {self.start_s})"
            )
        if self.kind == CACHE_FLUSH and self.end_s != self.start_s:
            raise ValueError("a cache flush is an instant (end_s == start_s)")
        if self.shard < 0:
            raise ValueError(f"shard index must be >= 0, got {self.shard}")
        if self.replica is not None and self.replica < 0:
            raise ValueError(f"replica index must be >= 0, got {self.replica}")
        if self.kind == SHARD_OUTAGE and self.replica is not None:
            raise ValueError("a shard outage targets every replica (replica=None)")
        if self.kind == STRAGGLER and self.severity <= 1.0:
            raise ValueError(
                f"straggler severity must be > 1, got {self.severity}"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def covers(self, time_s: float) -> bool:
        """True when ``time_s`` falls inside the half-open window."""
        return self.start_s <= time_s < self.end_s

    def targets(self, shard: int, replica: int) -> bool:
        """True when this event applies to (shard, replica)."""
        return self.shard == shard and (
            self.replica is None or self.replica == replica
        )


def _sort_key(event: FaultEvent) -> Tuple:
    return (
        event.start_s,
        event.end_s,
        event.kind,
        event.shard,
        -1 if event.replica is None else event.replica,
    )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted schedule of :class:`FaultEvent`\\ s.

    Plans are value objects: building one sorts the events into a
    canonical order, so two plans with the same events compare (and
    replay) identically regardless of construction order.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=_sort_key))
        object.__setattr__(self, "events", ordered)

    @property
    def empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> Tuple[FaultEvent, ...]:
        """Events of one kind, in schedule order."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(event for event in self.events if event.kind == kind)

    def mttr_s(self) -> Optional[float]:
        """Mean time-to-recovery of the scheduled downtime windows.

        A crash or outage "recovers" when its window ends (the replica
        restarts), so the plan's MTTR is the mean downtime-window
        duration -- None when the plan schedules no downtime at all
        (the "--" column of a zero-fault SLO report).
        """
        downs = [
            event.duration_s
            for event in self.events
            if event.kind in _DOWN_KINDS
        ]
        if not downs:
            return None
        return float(np.mean(downs))


class FaultError(RuntimeError):
    """One serve attempt landed inside a fault window.

    ``cost`` is what the failed attempt physically consumed: nothing
    for a crash/outage (the replica never ran), the full serve cost for
    a transient error (the work happened, the answer is garbage).  The
    caller decides what *detecting* the failure costs on top (timeout
    latency, see :mod:`repro.serving.resilience`).
    """

    def __init__(
        self, kind: str, site: Tuple[int, int], cost: Cost, event: FaultEvent
    ):
        super().__init__(
            f"{kind} at shard {site[0]} replica {site[1]} "
            f"(window [{event.start_s:.6f}, {event.end_s:.6f})s)"
        )
        self.kind = kind
        self.site = site
        self.cost = cost
        self.event = event


class FaultInjector:
    """Point-in-time oracle over one :class:`FaultPlan`.

    Stateless with respect to the serve path except for the cache-flush
    cursor (flush instants are consumed in dispatch order) -- so the
    same injector can answer any number of interleaved queries without
    drifting, and :meth:`reset` rewinds it for a fresh run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._site_events: Dict[Tuple[int, int], Tuple[FaultEvent, ...]] = {}
        self._flushes = plan.by_kind(CACHE_FLUSH)
        self._flush_cursor = 0

    @property
    def empty(self) -> bool:
        return self.plan.empty

    def reset(self) -> None:
        """Rewind the flush cursor (start of a fresh run)."""
        self._flush_cursor = 0

    def _events_for(self, shard: int, replica: int) -> Tuple[FaultEvent, ...]:
        key = (shard, replica)
        cached = self._site_events.get(key)
        if cached is None:
            cached = tuple(
                event
                for event in self.plan.events
                if event.kind != CACHE_FLUSH and event.targets(shard, replica)
            )
            self._site_events[key] = cached
        return cached

    def down_at(
        self, shard: int, replica: int, time_s: float
    ) -> Optional[FaultEvent]:
        """The crash/outage window covering ``time_s``, if any."""
        for event in self._events_for(shard, replica):
            if event.kind in _DOWN_KINDS and event.covers(time_s):
                return event
        return None

    def error_at(
        self, shard: int, replica: int, time_s: float
    ) -> Optional[FaultEvent]:
        """The transient-error window covering ``time_s``, if any."""
        for event in self._events_for(shard, replica):
            if event.kind == ERROR and event.covers(time_s):
                return event
        return None

    def latency_multiplier(
        self, shard: int, replica: int, time_s: float
    ) -> float:
        """Product of straggler severities active at ``time_s`` (1.0 =
        healthy)."""
        multiplier = 1.0
        for event in self._events_for(shard, replica):
            if event.kind == STRAGGLER and event.covers(time_s):
                multiplier *= event.severity
        return multiplier

    def take_flushes(self, now_s: float) -> List[FaultEvent]:
        """Cache-flush instants due by ``now_s``, each returned once.

        The session calls this at every batch dispatch (dispatches are
        monotone in time), so each flush fires exactly once, at the
        first dispatch at-or-after its scheduled instant.
        """
        due: List[FaultEvent] = []
        while (
            self._flush_cursor < len(self._flushes)
            and self._flushes[self._flush_cursor].start_s <= now_s
        ):
            due.append(self._flushes[self._flush_cursor])
            self._flush_cursor += 1
        return due

    def mttr_s(self) -> Optional[float]:
        return self.plan.mttr_s()


# -- seeded scenario builders ----------------------------------------------


def _jitter(rng: np.random.Generator, span_s: float) -> float:
    return float(rng.uniform(-0.02, 0.02)) * span_s


def chaos_scenario(
    duration_s: float,
    num_shards: int,
    replicas_per_shard: int,
    seed: int = 0,
    *,
    crashes: int = 2,
    outages: int = 1,
    stragglers: int = 2,
    error_windows: int = 1,
    cache_flushes: int = 1,
    crash_frac: float = 0.10,
    outage_frac: float = 0.15,
    straggler_frac: float = 0.25,
    error_frac: float = 0.08,
    straggler_severity: float = 6.0,
) -> FaultPlan:
    """Build a reproducible fault schedule over one run's timeline.

    Placement is deterministic from ``seed`` (small uniform jitter from
    one seeded generator, drawn in a fixed order).  The layout is
    chosen so a *resilient* fleet never goes fully dark:

    * outages rotate over shards with non-overlapping windows, so at
      least one shard survives any instant (partial scatter-gather has
      something to gather);
    * crashes prefer shards *other* than the concurrently-failing
      outage shard and rotate replicas, so a replica group always keeps
      a healthy peer to fail over to;
    * stragglers and error windows rotate sites independently.
    """
    if duration_s <= 0.0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if num_shards < 1 or replicas_per_shard < 1:
        raise ValueError("need at least one shard and one replica per shard")
    rng = np.random.default_rng([seed, 0xFA])
    events: List[FaultEvent] = []

    for index in range(outages):
        width = outage_frac * duration_s
        center = duration_s * (index + 1.0) / (outages + 1.0) + _jitter(
            rng, duration_s
        )
        start = min(max(0.0, center - width / 2.0), duration_s - width)
        events.append(
            FaultEvent(
                SHARD_OUTAGE,
                start,
                start + width,
                shard=index % num_shards,
            )
        )

    for index in range(crashes):
        width = crash_frac * duration_s
        start = duration_s * (0.10 + 0.72 * index / max(1, crashes)) + _jitter(
            rng, duration_s
        )
        start = min(max(0.0, start), duration_s - width)
        # Keep crash targets off shard 0 (the first outage target) when
        # the fleet has somewhere else to aim: a crash plus an outage on
        # the same shard could darken it past what failover can absorb.
        if num_shards > 1:
            shard = 1 + index % (num_shards - 1)
        else:
            shard = 0
        events.append(
            FaultEvent(
                CRASH,
                start,
                start + width,
                shard=shard,
                replica=index % replicas_per_shard,
            )
        )

    for index in range(stragglers):
        width = straggler_frac * duration_s
        start = duration_s * (0.05 + 0.70 * index / max(1, stragglers)) + _jitter(
            rng, duration_s
        )
        start = min(max(0.0, start), duration_s - width)
        # Stragglers follow the outage rotation (shard 0 first) rather
        # than the crash shards: a straggler on the last healthy replica
        # of a crash-stricken shard would leave recovery nothing to
        # hedge against -- the fleet's floor latency would be the
        # straggler's, no policy could beat it.
        events.append(
            FaultEvent(
                STRAGGLER,
                start,
                start + width,
                shard=0,
                replica=index % replicas_per_shard,
                severity=straggler_severity,
            )
        )

    for index in range(error_windows):
        width = error_frac * duration_s
        start = duration_s * (0.20 + 0.55 * index / max(1, error_windows)) + _jitter(
            rng, duration_s
        )
        start = min(max(0.0, start), duration_s - width)
        events.append(
            FaultEvent(
                ERROR,
                start,
                start + width,
                shard=(index + 1) % num_shards,
                replica=index % replicas_per_shard,
            )
        )

    for index in range(cache_flushes):
        at = duration_s * (0.30 + 0.50 * index / max(1, cache_flushes))
        events.append(FaultEvent(CACHE_FLUSH, at, at))

    return FaultPlan(tuple(events))


def escalating_scenarios(
    duration_s: float,
    num_shards: int,
    replicas_per_shard: int,
    seed: int = 0,
) -> Dict[str, FaultPlan]:
    """The E-chaos ladder: three plans of increasing hostility.

    ``moderate`` is the *pinned* acceptance scenario (seeded replica
    crashes + one shard outage + stragglers); ``light`` is stragglers
    only, ``severe`` piles on more of everything.  Returned in
    escalation order (insertion-ordered dict).
    """
    return {
        "light": chaos_scenario(
            duration_s,
            num_shards,
            replicas_per_shard,
            seed=seed,
            crashes=0,
            outages=0,
            stragglers=2,
            error_windows=0,
            cache_flushes=0,
        ),
        "moderate": chaos_scenario(
            duration_s,
            num_shards,
            replicas_per_shard,
            seed=seed,
        ),
        "severe": chaos_scenario(
            duration_s,
            num_shards,
            replicas_per_shard,
            seed=seed,
            crashes=4,
            outages=2,
            stragglers=3,
            error_windows=2,
            cache_flushes=2,
            outage_frac=0.18,
            straggler_severity=10.0,
        ),
    }
