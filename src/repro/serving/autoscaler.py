"""Closed-loop autoscaler: grow (shards, replicas) until the SLO holds.

The serving layer has two orthogonal scale-out axes with different
physics (and different energy bills):

* **shards** partition the corpus, cutting *per-query service latency*
  (each shard ranks a ~1/N slice with a ~1/N candidate budget);
* **replicas** duplicate a shard's engine, cutting *queueing* (each
  dispatch round splits across R copies, so occupancy per batch
  approaches 1/R).

Which axis a violated SLO needs depends on the traffic: an overloaded
deployment queues (add replicas), a lightly loaded one with a tight
latency contract is service-bound (add shards).  Rather than hard-coding
that diagnosis, the :class:`Autoscaler` closes the loop *empirically*:
from the current config it simulates both single-step scale-outs against
the same recorded traffic, keeps whichever one measures better, and
repeats until every tenant's p95 contract holds or the resource bounds
are hit.  Among every config it measured that meets the SLO, it reports
the one with the lowest energy per request -- the paper's currency --
so the loop answers "the cheapest deployment that honours the contract",
not merely "a big enough one".

Evaluations are memoized by config, and everything downstream of the
seeded traffic is deterministic, so a fixed-seed autoscaler run (its
step sequence and its chosen config) is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.serving.session import ServingResult
from repro.serving.slo import SLOReport

__all__ = ["AutoscalerConfig", "ScaleStep", "AutoscaleResult", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Contract and search bounds of one autoscaling run.

    ``p95_slo_ms`` is the global latency contract; ``tenant_slos_ms``
    optionally tightens it per tenant (checked against each tenant's own
    p95).  The loop may evaluate at most ``max_steps`` scale-out rounds
    of at most two candidate configs each.
    """

    p95_slo_ms: float
    tenant_slos_ms: Mapping[str, float] = field(default_factory=dict)
    min_shards: int = 1
    max_shards: int = 4
    min_replicas: int = 1
    max_replicas: int = 4
    max_steps: int = 6

    def __post_init__(self) -> None:
        if self.p95_slo_ms <= 0.0:
            raise ValueError(f"p95 SLO must be positive, got {self.p95_slo_ms}")
        for tenant, slo_ms in self.tenant_slos_ms.items():
            if slo_ms <= 0.0:
                raise ValueError(
                    f"tenant {tenant!r} p95 SLO must be positive, got {slo_ms}"
                )
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"[{self.min_shards}, {self.max_shards}]"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{self.min_replicas}, {self.max_replicas}]"
            )
        if self.max_steps < 1:
            raise ValueError(f"max steps must be >= 1, got {self.max_steps}")


@dataclass(frozen=True)
class ScaleStep:
    """One evaluated (shards, replicas) config and its measurements."""

    shards: int
    replicas: int
    report: SLOReport
    tenant_reports: Dict[str, SLOReport]
    meets_slo: bool
    violations: Tuple[str, ...]  # human-readable contract breaches

    @property
    def config_key(self) -> Tuple[int, int]:
        return (self.shards, self.replicas)


@dataclass
class AutoscaleResult:
    """The full trajectory of one closed-loop run."""

    steps: List[ScaleStep]
    best: ScaleStep
    converged: bool

    @property
    def chosen(self) -> Tuple[int, int]:
        """The (shards, replicas) deployment the loop settled on."""
        return self.best.config_key

    def format(self) -> str:
        lines = []
        for step in self.steps:
            marker = "ok " if step.meets_slo else "VIOL"
            lines.append(
                f"  [{marker}] shards={step.shards} replicas={step.replicas} "
                f"p95={step.report.p95_ms:8.3f}ms "
                f"E/req={step.report.energy_per_request_uj:10.4f}uJ"
            )
        state = "converged" if self.converged else "exhausted bounds"
        lines.append(
            f"  -> {state}: shards={self.best.shards} "
            f"replicas={self.best.replicas}"
        )
        return "\n".join(lines)


class Autoscaler:
    """Greedy coordinate scale-out, closed over simulated measurements.

    ``evaluate(shards, replicas)`` must return the
    :class:`~repro.serving.session.ServingResult` of serving the *same*
    request stream on that deployment (the experiment builds the engine,
    session, cache and scheduler; the autoscaler only reads SLO reports).
    """

    def __init__(
        self,
        evaluate: Callable[[int, int], ServingResult],
        config: AutoscalerConfig,
    ):
        self.evaluate = evaluate
        self.config = config
        self._memo: Dict[Tuple[int, int], ScaleStep] = {}

    def _measure(self, shards: int, replicas: int) -> ScaleStep:
        key = (shards, replicas)
        if key in self._memo:
            return self._memo[key]
        result = self.evaluate(shards, replicas)
        report = result.report
        tenant_reports = result.tenant_reports
        violations: List[str] = []
        if report.p95_ms > self.config.p95_slo_ms:
            violations.append(
                f"global p95 {report.p95_ms:.3f}ms > {self.config.p95_slo_ms:.3f}ms"
            )
        for tenant, slo_ms in sorted(self.config.tenant_slos_ms.items()):
            tenant_report = tenant_reports.get(tenant)
            if tenant_report is None:
                violations.append(f"tenant {tenant!r} sent no traffic")
            elif tenant_report.p95_ms > slo_ms:
                violations.append(
                    f"tenant {tenant!r} p95 {tenant_report.p95_ms:.3f}ms "
                    f"> {slo_ms:.3f}ms"
                )
        step = ScaleStep(
            shards=shards,
            replicas=replicas,
            report=report,
            tenant_reports=tenant_reports,
            meets_slo=not violations,
            violations=tuple(violations),
        )
        self._memo[key] = step
        return step

    def _candidates(self, shards: int, replicas: int) -> List[Tuple[int, int]]:
        """The single-step scale-outs from (shards, replicas), in bounds."""
        moves = []
        if shards < self.config.max_shards:
            moves.append((shards + 1, replicas))
        if replicas < self.config.max_replicas:
            moves.append((shards, replicas + 1))
        return moves

    def run(self) -> AutoscaleResult:
        """Close the loop: measure, scale out along the better axis, repeat."""
        current = self._measure(self.config.min_shards, self.config.min_replicas)
        steps = [current]
        for _ in range(self.config.max_steps):
            if current.meets_slo:
                break
            moves = self._candidates(current.shards, current.replicas)
            if not moves:
                break  # bounds exhausted while still violating
            measured = [self._measure(shards, replicas) for shards, replicas in moves]
            steps.extend(measured)
            feasible = [step for step in measured if step.meets_slo]
            if feasible:
                # Both axes may satisfy the contract: take the cheaper one.
                current = min(
                    feasible,
                    key=lambda step: (
                        step.report.energy_per_request_uj,
                        step.config_key,
                    ),
                )
            else:
                # Neither does yet: follow the axis that helped the tail more.
                current = min(
                    measured,
                    key=lambda step: (step.report.p95_ms, step.config_key),
                )
        feasible_steps = [step for step in steps if step.meets_slo]
        if feasible_steps:
            best = min(
                feasible_steps,
                key=lambda step: (
                    step.report.energy_per_request_uj,
                    step.config_key,
                ),
            )
        else:
            best = min(
                steps, key=lambda step: (step.report.p95_ms, step.config_key)
            )
        return AutoscaleResult(
            steps=steps, best=best, converged=bool(feasible_steps)
        )
