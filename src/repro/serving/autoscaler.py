"""Closed-loop autoscaler: grow (shards, replicas) until the SLO holds.

The serving layer has two orthogonal scale-out axes with different
physics (and different energy bills):

* **shards** partition the corpus, cutting *per-query service latency*
  (each shard ranks a ~1/N slice with a ~1/N candidate budget);
* **replicas** duplicate a shard's engine, cutting *queueing* (each
  dispatch round splits across R copies, so occupancy per batch
  approaches 1/R).

Which axis a violated SLO needs depends on the traffic: an overloaded
deployment queues (add replicas), a lightly loaded one with a tight
latency contract is service-bound (add shards).  Rather than hard-coding
that diagnosis, the :class:`Autoscaler` closes the loop *empirically*:
from the current config it simulates both single-step scale-outs against
the same recorded traffic, keeps whichever one measures better, and
repeats until every tenant's p95 contract holds or the resource bounds
are hit.  Among every config it measured that meets the SLO, it reports
the one with the lowest energy per request -- the paper's currency --
so the loop answers "the cheapest deployment that honours the contract",
not merely "a big enough one".

Evaluations are memoized by config, and everything downstream of the
seeded traffic is deterministic, so a fixed-seed autoscaler run (its
step sequence and its chosen config) is exactly reproducible.

Online controllers
------------------
The closed loop above *replays* the traffic against each candidate
deployment -- fine for capacity planning, impossible in production,
where the stream happens once.  :class:`OnlineScaler` is the live
counterpart: attached to a :class:`~repro.serving.session.ServingSession`
it watches completed requests in windows, and when the windowed p95
overshoots the contract it scales out *mid-run* -- adding a replica when
queueing dominates the latency (requests wait for the engine), a shard
when service time does (the engine itself is too slow) -- paying the
state-migration bill through
:meth:`~repro.serving.session.ServingSession.scale_to` instead of
restarting.  Under sustained headroom it scales back in (replicas first:
dropping state is free, re-partitioning is not).
:class:`ScheduledScalePlan` drives the same mechanism from a fixed
timetable (pre-provisioning for a known flash crowd).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.serving.scheduler import Batch
from repro.serving.session import ServingResult
from repro.serving.slo import RequestRecord, SLOReport

__all__ = [
    "AutoscalerConfig",
    "ScaleStep",
    "AutoscaleResult",
    "Autoscaler",
    "OnlineScalerConfig",
    "OnlineScaler",
    "ScheduledScalePlan",
]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Contract and search bounds of one autoscaling run.

    ``p95_slo_ms`` is the global latency contract; ``tenant_slos_ms``
    optionally tightens it per tenant (checked against each tenant's own
    p95).  The loop may evaluate at most ``max_steps`` scale-out rounds
    of at most two candidate configs each.
    """

    p95_slo_ms: float
    tenant_slos_ms: Mapping[str, float] = field(default_factory=dict)
    min_shards: int = 1
    max_shards: int = 4
    min_replicas: int = 1
    max_replicas: int = 4
    max_steps: int = 6
    #: GPU spillover replicas per shard -- the heterogeneous third axis.
    #: ``max_spillover_replicas=0`` (the default) keeps the search on the
    #: homogeneous (shards, replicas) grid, ``evaluate`` is called with
    #: two arguments, and every ``config_key`` stays a 2-tuple, so
    #: existing homogeneous runs are byte-for-byte unchanged.
    min_spillover_replicas: int = 0
    max_spillover_replicas: int = 0

    def __post_init__(self) -> None:
        if self.p95_slo_ms <= 0.0:
            raise ValueError(f"p95 SLO must be positive, got {self.p95_slo_ms}")
        for tenant, slo_ms in self.tenant_slos_ms.items():
            if slo_ms <= 0.0:
                raise ValueError(
                    f"tenant {tenant!r} p95 SLO must be positive, got {slo_ms}"
                )
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"[{self.min_shards}, {self.max_shards}]"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{self.min_replicas}, {self.max_replicas}]"
            )
        if not 0 <= self.min_spillover_replicas <= self.max_spillover_replicas:
            raise ValueError(
                f"need 0 <= min_spillover_replicas <= max_spillover_replicas, "
                f"got [{self.min_spillover_replicas}, "
                f"{self.max_spillover_replicas}]"
            )
        if self.max_steps < 1:
            raise ValueError(f"max steps must be >= 1, got {self.max_steps}")

    @property
    def heterogeneous(self) -> bool:
        """Whether the GPU spillover axis is part of the search space."""
        return self.max_spillover_replicas > 0


@dataclass(frozen=True)
class ScaleStep:
    """One evaluated deployment config and its measurements.

    ``spillover_replicas`` is the heterogeneous third axis (GPU spillover
    replicas per shard); it stays 0 on homogeneous searches, where
    ``config_key`` keeps its historical 2-tuple shape.
    """

    shards: int
    replicas: int
    report: SLOReport
    tenant_reports: Dict[str, SLOReport]
    meets_slo: bool
    violations: Tuple[str, ...]  # human-readable contract breaches
    spillover_replicas: int = 0

    @property
    def config_key(self) -> Tuple[int, ...]:
        """(shards, replicas) -- extended by spillover only when present.

        A homogeneous step keeps the 2-tuple key so pinned homogeneous
        trajectories (and their memo keys) are unchanged; a heterogeneous
        step carries the GPU axis.  Mixed tuples still compare cleanly:
        ``(s, r) < (s, r, k)`` for any ``k >= 1``, i.e. ties on the IMC
        axes prefer the fleet with no GPUs.
        """
        if self.spillover_replicas:
            return (self.shards, self.replicas, self.spillover_replicas)
        return (self.shards, self.replicas)


@dataclass
class AutoscaleResult:
    """The full trajectory of one closed-loop run."""

    steps: List[ScaleStep]
    best: ScaleStep
    converged: bool

    @property
    def chosen(self) -> Tuple[int, ...]:
        """The deployment the loop settled on.

        A 2-tuple ``(shards, replicas)`` for homogeneous fleets, a
        3-tuple ``(shards, replicas, spillover_replicas)`` when the
        chosen step fields GPU spillover replicas.
        """
        return self.best.config_key

    def format(self) -> str:
        lines = []
        for step in self.steps:
            marker = "ok " if step.meets_slo else "VIOL"
            spill = (
                f" spillover={step.spillover_replicas}"
                if step.spillover_replicas
                else ""
            )
            lines.append(
                f"  [{marker}] shards={step.shards} replicas={step.replicas}"
                f"{spill} p95={step.report.p95_ms:8.3f}ms "
                f"E/req={step.report.energy_per_request_uj:10.4f}uJ"
            )
        state = "converged" if self.converged else "exhausted bounds"
        chosen = f"shards={self.best.shards} replicas={self.best.replicas}"
        if self.best.spillover_replicas:
            chosen += f" spillover={self.best.spillover_replicas}"
        lines.append(f"  -> {state}: {chosen}")
        return "\n".join(lines)


class Autoscaler:
    """Greedy coordinate scale-out, closed over simulated measurements.

    ``evaluate(shards, replicas)`` must return the
    :class:`~repro.serving.session.ServingResult` of serving the *same*
    request stream on that deployment (the experiment builds the engine,
    session, cache and scheduler; the autoscaler only reads SLO reports).

    With ``config.max_spillover_replicas > 0`` the search runs over the
    heterogeneous ``(shards, replicas, spillover_replicas)`` grid and
    ``evaluate`` is called with three arguments instead; placement stays
    energy-aware -- among SLO-feasible deployments the minimum
    energy-per-request wins, so the loop only fields GPU spillover
    replicas (an order of magnitude hungrier per query than the IMC
    fabric) when the homogeneous axes cannot meet the contract.
    """

    def __init__(
        self,
        evaluate: Callable[..., ServingResult],
        config: AutoscalerConfig,
    ):
        self.evaluate = evaluate
        self.config = config
        self._memo: Dict[Tuple[int, int, int], ScaleStep] = {}

    def _measure(self, shards: int, replicas: int, spillover: int = 0) -> ScaleStep:
        key = (shards, replicas, spillover)
        if key in self._memo:
            return self._memo[key]
        if self.config.heterogeneous:
            result = self.evaluate(shards, replicas, spillover)
        else:
            result = self.evaluate(shards, replicas)
        report = result.report
        tenant_reports = result.tenant_reports
        violations: List[str] = []
        if report.p95_ms > self.config.p95_slo_ms:
            violations.append(
                f"global p95 {report.p95_ms:.3f}ms > {self.config.p95_slo_ms:.3f}ms"
            )
        for tenant, slo_ms in sorted(self.config.tenant_slos_ms.items()):
            tenant_report = tenant_reports.get(tenant)
            if tenant_report is None:
                violations.append(f"tenant {tenant!r} sent no traffic")
            elif tenant_report.p95_ms > slo_ms:
                violations.append(
                    f"tenant {tenant!r} p95 {tenant_report.p95_ms:.3f}ms "
                    f"> {slo_ms:.3f}ms"
                )
        step = ScaleStep(
            shards=shards,
            replicas=replicas,
            report=report,
            tenant_reports=tenant_reports,
            meets_slo=not violations,
            violations=tuple(violations),
            spillover_replicas=spillover,
        )
        self._memo[key] = step
        return step

    def _candidates(
        self, shards: int, replicas: int, spillover: int
    ) -> List[Tuple[int, int, int]]:
        """The single-step scale-outs from the current config, in bounds."""
        moves = []
        if shards < self.config.max_shards:
            moves.append((shards + 1, replicas, spillover))
        if replicas < self.config.max_replicas:
            moves.append((shards, replicas + 1, spillover))
        if spillover < self.config.max_spillover_replicas:
            moves.append((shards, replicas, spillover + 1))
        return moves

    def run(self) -> AutoscaleResult:
        """Close the loop: measure, scale out along the better axis, repeat."""
        current = self._measure(
            self.config.min_shards,
            self.config.min_replicas,
            self.config.min_spillover_replicas,
        )
        steps = [current]
        for _ in range(self.config.max_steps):
            if current.meets_slo:
                break
            moves = self._candidates(
                current.shards, current.replicas, current.spillover_replicas
            )
            if not moves:
                break  # bounds exhausted while still violating
            measured = [self._measure(*move) for move in moves]
            steps.extend(measured)
            feasible = [step for step in measured if step.meets_slo]
            if feasible:
                # Both axes may satisfy the contract: take the cheaper one.
                current = min(
                    feasible,
                    key=lambda step: (
                        step.report.energy_per_request_uj,
                        step.config_key,
                    ),
                )
            else:
                # Neither does yet: follow the axis that helped the tail more.
                current = min(
                    measured,
                    key=lambda step: (step.report.p95_ms, step.config_key),
                )
        feasible_steps = [step for step in steps if step.meets_slo]
        if feasible_steps:
            best = min(
                feasible_steps,
                key=lambda step: (
                    step.report.energy_per_request_uj,
                    step.config_key,
                ),
            )
        else:
            best = min(
                steps, key=lambda step: (step.report.p95_ms, step.config_key)
            )
        return AutoscaleResult(
            steps=steps, best=best, converged=bool(feasible_steps)
        )


@dataclass(frozen=True)
class OnlineScalerConfig:
    """Contract, bounds and control law of one live scaling controller.

    A control decision fires once every ``window`` completed (served)
    requests, then the controller holds for ``cooldown`` further
    completions so the previous event's effect is measured, not guessed.
    Overshoot of ``p95_target_s`` scales out along the axis the window's
    evidence blames (queueing -> replicas, service -> shards); a p95
    under ``relax_watermark * target`` scales back in, replicas first.
    """

    p95_target_s: float
    window: int = 24
    cooldown: int = 24
    min_shards: int = 1
    max_shards: int = 4
    min_replicas: int = 1
    max_replicas: int = 4
    relax_watermark: float = 0.3

    def __post_init__(self) -> None:
        if self.p95_target_s <= 0.0:
            raise ValueError(
                f"p95 target must be positive, got {self.p95_target_s}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError(
                f"need 1 <= min_shards <= max_shards, got "
                f"[{self.min_shards}, {self.max_shards}]"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"[{self.min_replicas}, {self.max_replicas}]"
            )
        if not 0.0 < self.relax_watermark < 1.0:
            raise ValueError(
                f"relax watermark must be in (0, 1), got {self.relax_watermark}"
            )


class OnlineScaler:
    """Reactive mid-run scale controller for a :class:`ServingSession`.

    The session calls :meth:`observe` after every dispatched batch with
    the batch, its engine occupancy and the records it produced; the
    return value (None or a new (shards, replicas)) feeds
    :meth:`~repro.serving.session.ServingSession.scale_to`.  Everything
    is driven by observed completions, so a seeded session replays the
    same scale events at the same dispatch clocks.
    """

    def __init__(self, config: OnlineScalerConfig):
        self.config = config
        self._latencies: List[float] = []
        self._queue_s = 0.0
        self._service_s = 0.0
        self._hold = 0
        #: One entry per decision: (time_s, p95_s, old, new).
        self.decisions: List[Tuple[float, float, Tuple[int, int], Tuple[int, int]]] = []

    def _scale_out(
        self, current: Tuple[int, int], queue_bound: bool
    ) -> Optional[Tuple[int, int]]:
        shards, replicas = current
        prefer_replica = queue_bound and replicas < self.config.max_replicas
        if prefer_replica:
            return (shards, replicas + 1)
        if shards < self.config.max_shards:
            return (shards + 1, replicas)
        if replicas < self.config.max_replicas:
            return (shards, replicas + 1)
        return None  # at the ceiling: admission control's problem now

    def _scale_in(self, current: Tuple[int, int]) -> Optional[Tuple[int, int]]:
        shards, replicas = current
        if replicas > self.config.min_replicas:
            return (shards, replicas - 1)  # dropping replica state is free
        if shards > self.config.min_shards:
            return (shards - 1, replicas)
        return None

    def observe(
        self,
        batch: Batch,
        occupancy_s: float,
        records: Sequence[RequestRecord],
        current: Tuple[int, int],
    ) -> Optional[Tuple[int, int]]:
        """Fold one batch's evidence; maybe return a new deployment."""
        served = [record for record in records if not record.shed]
        self._latencies.extend(record.latency_s for record in served)
        self._queue_s += sum(
            batch.dispatch_s - record.request.arrival_s for record in served
        )
        self._service_s += occupancy_s * len(served)
        if self._hold > 0:
            self._hold = max(0, self._hold - len(served))
            if self._hold > 0:
                return None
            self._reset_window()
            return None
        if len(self._latencies) < self.config.window:
            return None
        p95_s = float(np.percentile(self._latencies, 95))
        queue_bound = self._queue_s > self._service_s
        decision: Optional[Tuple[int, int]] = None
        if p95_s > self.config.p95_target_s:
            decision = self._scale_out(current, queue_bound)
        elif p95_s < self.config.relax_watermark * self.config.p95_target_s:
            decision = self._scale_in(current)
        self._reset_window()
        if decision is not None:
            end_s = batch.dispatch_s + occupancy_s
            self.decisions.append((end_s, p95_s, tuple(current), decision))
            self._hold = self.config.cooldown
        return decision

    def _reset_window(self) -> None:
        self._latencies.clear()
        self._queue_s = 0.0
        self._service_s = 0.0


class ScheduledScalePlan:
    """A fixed timetable of deployments, fired by the dispatch clock.

    ``events`` is a sequence of ``(time_s, (shards, replicas))`` pairs;
    each fires at the first batch dispatched at or after its time (the
    pre-provisioning pattern: grow *before* the advertised flash crowd,
    shrink after it).  Implements the same ``observe`` protocol as
    :class:`OnlineScaler`.

    Edge cases are pinned down so forecast-built plans compose safely:
    an *empty* plan is legal and is a no-op (a session driven by it is
    bit-identical to one with no scaler at all -- the shape a forecaster
    that found nothing to do emits); out-of-order events are sorted by
    time with a *stable* sort, so duplicate timestamps keep their
    listing order deterministically, and when several events are due at
    one dispatch the last-listed deployment wins.
    """

    def __init__(self, events: Sequence[Tuple[float, Tuple[int, int]]]):
        self.events = sorted(
            ((float(time_s), (int(s), int(r))) for time_s, (s, r) in events),
            key=lambda event: event[0],
        )
        for time_s, (shards, replicas) in self.events:
            if time_s < 0.0:
                raise ValueError(f"event time must be non-negative, got {time_s}")
            if shards < 1 or replicas < 1:
                raise ValueError(
                    f"deployment axes must be >= 1, got ({shards}, {replicas})"
                )
        self._next = 0

    def observe(
        self,
        batch: Batch,
        occupancy_s: float,
        records: Sequence[RequestRecord],
        current: Tuple[int, int],
    ) -> Optional[Tuple[int, int]]:
        """Fire every due event; the latest due deployment wins."""
        decision: Optional[Tuple[int, int]] = None
        while (
            self._next < len(self.events)
            and self.events[self._next][0] <= batch.dispatch_s
        ):
            decision = self.events[self._next][1]
            self._next += 1
        return decision
