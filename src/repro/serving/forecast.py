"""Forecast-driven predictive autoscaling: fit the diurnal curve, scale early.

The reactive :class:`~repro.serving.autoscaler.OnlineScaler` pays for
every ramp twice: the windowed p95 must first overshoot the contract
(the violation), and the scale-out then stalls the engine for the
migration (billed under "Migration") exactly when the queue is deepest.
But diurnal traffic is *predictable*: the next hour's load is largely a
function of the clock, the same hourly-elasticity observation
:mod:`~repro.serving.workload_analyzer` extracts as a feature.  This
module closes that gap:

* :class:`ForecastModel` -- a seasonal-plus-trend rate model
  ``rate(t) = (base + trend*t) * (1 + amplitude*sin(2*pi*t/period + phase))``,
  the same family :class:`~repro.serving.traffic.DiurnalTraffic`
  generates from (so the *oracle* arm of ``E-forecast`` is simply the
  generator's own parameters).
* :class:`TrafficForecaster` -- fits a :class:`ForecastModel` to the
  *observed* arrival series mid-run: arrivals are binned into a rate
  curve and a deterministic linear least-squares solve (no RNG anywhere)
  recovers level, trend and the seasonal term.
* :class:`DeploymentCapacityModel` -- measured capacity and energy per
  candidate deployment; ``required_deployment`` picks the *cheapest*
  deployment with enough headroom for a predicted rate (energy-aware
  placement: GPU spillover only when the IMC grid cannot carry the peak).
* :func:`plan_scale_events` / :func:`build_scale_plan` -- walk the
  forecast over a horizon and emit a
  :class:`~repro.serving.autoscaler.ScheduledScalePlan` whose events
  fire *lead_time_s before* each predicted ramp (lead time >= the
  measured migration latency, so the stall is paid in the valley).
* :class:`PredictiveScaler` -- the live controller: observes arrivals
  through the session's ``observe`` protocol, fits once enough evidence
  accumulated, builds the plan, and from then on fires it.  With
  ``act=False`` it still observes and fits but never returns a decision
  -- the observation-only arm ``E-forecast`` pins bit-identical.

Everything downstream of the seeded traffic is deterministic: the fit is
a closed-form solve over the observed arrivals, so a fixed-seed session
replays the same forecast, the same plan, and the same scale events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.autoscaler import ScheduledScalePlan
from repro.serving.scheduler import Batch
from repro.serving.slo import RequestRecord

__all__ = [
    "ForecastModel",
    "TrafficForecaster",
    "DeploymentCapacity",
    "DeploymentCapacityModel",
    "plan_scale_events",
    "build_scale_plan",
    "PredictiveScaler",
]


@dataclass(frozen=True)
class ForecastModel:
    """Seasonal-plus-trend arrival-rate model.

    ``rate_at`` clamps at zero: a fitted negative level is "no traffic",
    not a sink.

    >>> model = ForecastModel(base_qps=100.0, amplitude=0.5, period_s=4.0)
    >>> float(model.rate_at(1.0))  # peak of sin at t = period/4
    150.0
    >>> float(model.rate_at(3.0))  # trough at t = 3*period/4
    50.0
    """

    base_qps: float
    amplitude: float
    period_s: float
    phase_rad: float = 0.0
    trend_qps_per_s: float = 0.0
    #: RMS of the fit residual in QPS (0.0 for an exact/oracle model) --
    #: an honesty signal: a bursty trace fits poorly and says so here.
    residual_rms_qps: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise ValueError(f"period must be positive, got {self.period_s}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")

    def rate_at(self, time_s):
        """Predicted instantaneous rate (QPS) at ``time_s`` (scalar or array)."""
        t = np.asarray(time_s, dtype=np.float64)
        level = np.maximum(0.0, self.base_qps + self.trend_qps_per_s * t)
        season = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * t / self.period_s + self.phase_rad
        )
        return level * np.maximum(0.0, season)

    def peak_rate(self, start_s: float, end_s: float, samples: int = 64) -> float:
        """The maximum predicted rate over ``[start_s, end_s]``."""
        if end_s < start_s:
            raise ValueError("window end precedes start")
        grid = np.linspace(start_s, end_s, max(2, samples))
        return float(np.max(self.rate_at(grid)))


class TrafficForecaster:
    """Fits a :class:`ForecastModel` to observed arrival timestamps.

    The fit is deterministic and closed-form: arrivals are histogrammed
    into ``bins`` equal-width rate samples over the observed span, and
    ``rate ~ a + b*t + c*sin(w*t) + d*cos(w*t)`` is solved by linear
    least squares (``c*sin + d*cos`` folds back into amplitude + phase).
    The seasonal period is either operator-supplied (``period_s`` -- the
    usual case: a service knows its day length) or grid-searched over
    ``period_candidates_s`` by residual.

    ``ready`` gates the fit on evidence: at least ``min_arrivals``
    observations spanning ``min_span_fraction`` of the (resolved)
    period, so the solve never runs on a sliver of the curve.

    The trend column joins the design matrix only once the observed span
    reaches ``trend_span_fraction`` of the period: over a fraction of a
    cycle a linear trend is nearly collinear with the rising edge of the
    sinusoid, and the degenerate solve extrapolates garbage -- exactly
    the mid-ramp moment a predictive scaler fits at.  Until then the
    model is pure level + season (trend 0), which extrapolates safely.
    """

    def __init__(
        self,
        period_s: Optional[float] = None,
        *,
        bins: int = 24,
        min_arrivals: int = 64,
        min_span_fraction: float = 0.35,
        trend_span_fraction: float = 0.75,
        period_candidates_s: Sequence[float] = (),
    ):
        if period_s is not None and period_s <= 0.0:
            raise ValueError(f"period must be positive, got {period_s}")
        if period_s is None and not period_candidates_s:
            raise ValueError(
                "need an operator period_s or period_candidates_s to search"
            )
        if bins < 4:
            raise ValueError(f"need >= 4 bins to fit 4 parameters, got {bins}")
        if min_arrivals < 8:
            raise ValueError(f"min_arrivals must be >= 8, got {min_arrivals}")
        if not 0.0 < min_span_fraction <= 1.0:
            raise ValueError(
                f"min_span_fraction must be in (0, 1], got {min_span_fraction}"
            )
        if trend_span_fraction < min_span_fraction:
            raise ValueError(
                "trend_span_fraction must be >= min_span_fraction, got "
                f"{trend_span_fraction} < {min_span_fraction}"
            )
        self.period_s = period_s
        self.bins = bins
        self.min_arrivals = min_arrivals
        self.min_span_fraction = min_span_fraction
        self.trend_span_fraction = trend_span_fraction
        self.period_candidates_s = tuple(
            float(candidate) for candidate in period_candidates_s
        )
        for candidate in self.period_candidates_s:
            if candidate <= 0.0:
                raise ValueError(f"candidate period must be positive, got {candidate}")
        self._arrivals: List[float] = []

    @property
    def num_observed(self) -> int:
        return len(self._arrivals)

    def observe(self, arrival_s: float) -> None:
        """Fold one observed arrival timestamp."""
        self._arrivals.append(float(arrival_s))

    def observe_many(self, arrivals_s: Sequence[float]) -> None:
        self._arrivals.extend(float(arrival) for arrival in arrivals_s)

    @property
    def ready(self) -> bool:
        """Enough evidence to fit: count and span thresholds both met."""
        if len(self._arrivals) < self.min_arrivals:
            return False
        span = max(self._arrivals) - min(self._arrivals)
        shortest = (
            self.period_s
            if self.period_s is not None
            else min(self.period_candidates_s)
        )
        return span >= self.min_span_fraction * shortest

    def _rate_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """Histogram arrivals into (bin_centers_s, rates_qps)."""
        arrivals = np.sort(np.asarray(self._arrivals, dtype=np.float64))
        start, end = float(arrivals[0]), float(arrivals[-1])
        bins = min(self.bins, max(4, arrivals.size // 4))
        edges = np.linspace(start, end, bins + 1)
        counts, _ = np.histogram(arrivals, bins=edges)
        widths = np.diff(edges)
        centers = 0.5 * (edges[:-1] + edges[1:])
        return centers, counts / widths

    @staticmethod
    def _solve(
        centers: np.ndarray,
        rates: np.ndarray,
        period_s: float,
        with_trend: bool,
    ) -> Tuple[np.ndarray, float]:
        omega = 2.0 * np.pi / period_s
        columns = [np.ones_like(centers)]
        if with_trend:
            columns.append(centers)
        columns.extend([np.sin(omega * centers), np.cos(omega * centers)])
        design = np.column_stack(columns)
        coeffs, *_ = np.linalg.lstsq(design, rates, rcond=None)
        residual = rates - design @ coeffs
        if not with_trend:
            coeffs = np.insert(coeffs, 1, 0.0)
        return coeffs, float(np.sqrt(np.mean(residual**2)))

    def fit(self) -> ForecastModel:
        """Solve for the :class:`ForecastModel`; raises unless :attr:`ready`."""
        if not self.ready:
            raise ValueError(
                f"not enough evidence to fit: {self.num_observed} arrivals "
                f"observed, need >= {self.min_arrivals} spanning "
                f">= {self.min_span_fraction:.0%} of the period"
            )
        centers, rates = self._rate_curve()
        span = float(centers[-1] - centers[0]) if centers.size > 1 else 0.0
        candidates = (
            (self.period_s,)
            if self.period_s is not None
            else self.period_candidates_s
        )
        best_period, best_coeffs, best_rms = None, None, np.inf
        for period in candidates:
            with_trend = span >= self.trend_span_fraction * period
            coeffs, rms = self._solve(centers, rates, period, with_trend)
            if rms < best_rms:  # strict: first-listed candidate wins ties
                best_period, best_coeffs, best_rms = period, coeffs, rms
        level, trend, sin_coef, cos_coef = (float(c) for c in best_coeffs)
        seasonal_abs = float(np.hypot(sin_coef, cos_coef))
        mean_level = float(np.mean(level + trend * centers))
        if mean_level > 0.0:
            amplitude = min(0.95, seasonal_abs / mean_level)
            phase = float(np.arctan2(cos_coef, sin_coef)) if amplitude else 0.0
        else:
            amplitude, phase = 0.0, 0.0
        return ForecastModel(
            base_qps=max(0.0, level),
            amplitude=amplitude,
            period_s=float(best_period),
            phase_rad=phase,
            trend_qps_per_s=trend,
            residual_rms_qps=best_rms,
        )


@dataclass(frozen=True)
class DeploymentCapacity:
    """One candidate deployment's measured capacity and unit energy."""

    deployment: Tuple[int, int]
    capacity_qps: float
    energy_per_request_uj: float = 0.0

    def __post_init__(self) -> None:
        if len(self.deployment) != 2 or min(self.deployment) < 1:
            raise ValueError(f"bad deployment {self.deployment!r}")
        if self.capacity_qps <= 0.0:
            raise ValueError(f"capacity must be positive, got {self.capacity_qps}")


class DeploymentCapacityModel:
    """Energy-aware mapping from predicted rate to required deployment.

    ``utilization`` is the headroom knob: a deployment is adequate for a
    rate only while ``rate <= utilization * capacity`` (running a queueing
    system at measured capacity *is* the SLO violation).  Among adequate
    deployments the minimum ``energy_per_request_uj`` wins (ties broken
    by the smaller deployment tuple), which is what makes the placement
    energy-aware: an expensive GPU-backed entry is chosen only when every
    cheaper entry lacks the headroom.
    """

    def __init__(
        self,
        capacities: Sequence[DeploymentCapacity],
        *,
        utilization: float = 0.7,
    ):
        if not capacities:
            raise ValueError("need at least one measured deployment")
        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        seen = set()
        for entry in capacities:
            if entry.deployment in seen:
                raise ValueError(f"duplicate deployment {entry.deployment}")
            seen.add(entry.deployment)
        self.utilization = utilization
        self._by_energy = sorted(
            capacities,
            key=lambda entry: (entry.energy_per_request_uj, entry.deployment),
        )
        self._max_capacity = max(
            self._by_energy, key=lambda entry: (entry.capacity_qps, entry.deployment)
        )

    @property
    def deployments(self) -> List[Tuple[int, int]]:
        """Candidates in energy order (the selection preference order)."""
        return [entry.deployment for entry in self._by_energy]

    def required_deployment(self, rate_qps: float) -> Tuple[int, int]:
        """The cheapest deployment with headroom for ``rate_qps``.

        Falls back to the highest-capacity candidate when even that one
        lacks headroom (scale as far as the grid goes; admission control
        owns the rest).
        """
        if rate_qps < 0.0:
            raise ValueError(f"rate must be non-negative, got {rate_qps}")
        for entry in self._by_energy:
            if rate_qps <= self.utilization * entry.capacity_qps:
                return entry.deployment
        return self._max_capacity.deployment


def plan_scale_events(
    model: ForecastModel,
    capacity: DeploymentCapacityModel,
    *,
    start_s: float,
    horizon_s: float,
    step_s: float,
    lead_time_s: float,
    initial_deployment: Tuple[int, int],
    scale_in_headroom: float = 1.15,
) -> List[Tuple[float, Tuple[int, int]]]:
    """Walk the forecast and emit lead-time-shifted scale events.

    Each ``step_s`` window's *peak* predicted rate picks a required
    deployment; a change is emitted ``lead_time_s`` before the window
    opens (clamped to ``start_s``), so the migration stall lands before
    the ramp, not on it.  Scale-ins are conservative: the smaller
    deployment must also carry ``scale_in_headroom`` times the window
    peak, which keeps a noisy fit from flapping around a threshold.
    """
    if horizon_s <= 0.0:
        raise ValueError(f"horizon must be positive, got {horizon_s}")
    if step_s <= 0.0:
        raise ValueError(f"step must be positive, got {step_s}")
    if lead_time_s < 0.0:
        raise ValueError(f"lead time must be non-negative, got {lead_time_s}")
    if scale_in_headroom < 1.0:
        raise ValueError(
            f"scale-in headroom must be >= 1, got {scale_in_headroom}"
        )
    events: List[Tuple[float, Tuple[int, int]]] = []
    current = tuple(initial_deployment)
    window_start = start_s
    end_s = start_s + horizon_s
    while window_start < end_s:
        window_end = min(window_start + step_s, end_s)
        peak = model.peak_rate(window_start, window_end)
        needed = capacity.required_deployment(peak)
        if needed != current:
            growing = capacity.required_deployment(
                peak * scale_in_headroom
            ) != current
            if needed > current or growing:
                # ``needed > current`` orders tuples: any strict growth
                # fires immediately; shrink only with headroom to spare.
                fire_s = max(start_s, window_start - lead_time_s)
                events.append((fire_s, needed))
                current = needed
        window_start = window_end
    return events


def build_scale_plan(
    model: ForecastModel,
    capacity: DeploymentCapacityModel,
    *,
    start_s: float,
    horizon_s: float,
    step_s: float,
    lead_time_s: float,
    initial_deployment: Tuple[int, int] = (1, 1),
    scale_in_headroom: float = 1.15,
) -> ScheduledScalePlan:
    """:func:`plan_scale_events` packaged as a :class:`ScheduledScalePlan`.

    An empty plan (the forecast never crosses a capacity threshold) is
    legal and bit-identical to running with no scaler at all.
    """
    return ScheduledScalePlan(
        plan_scale_events(
            model,
            capacity,
            start_s=start_s,
            horizon_s=horizon_s,
            step_s=step_s,
            lead_time_s=lead_time_s,
            initial_deployment=initial_deployment,
            scale_in_headroom=scale_in_headroom,
        )
    )


class PredictiveScaler:
    """Live forecast-driven controller for a :class:`ServingSession`.

    Implements the same ``observe`` protocol as
    :class:`~repro.serving.autoscaler.OnlineScaler`: the session calls it
    after every batch, and a non-None return value feeds ``scale_to``.
    Phase one is pure observation -- every batch's arrivals feed the
    :class:`TrafficForecaster`.  Once the forecaster is :attr:`ready`
    (and at least ``fit_after_arrivals`` arrivals are in), the model is
    fitted *once*, a :class:`ScheduledScalePlan` is built over
    ``horizon_s``, and from then on the plan's timetable drives the
    session.  ``act=False`` keeps everything -- observation, fit, plan --
    but never returns a decision: the observation-only arm whose
    bit-identity with "no scaler" the ``E-forecast`` experiment pins.

    When a session wires a telemetry plane through, the fit emits a
    ``forecast-fit`` instant plus ``repro_forecast_*`` metrics; telemetry
    is observation-only, as everywhere else.
    """

    def __init__(
        self,
        forecaster: TrafficForecaster,
        capacity: DeploymentCapacityModel,
        *,
        lead_time_s: float,
        horizon_s: float,
        step_s: float,
        fit_after_arrivals: Optional[int] = None,
        scale_in_headroom: float = 1.15,
        act: bool = True,
    ):
        if lead_time_s < 0.0:
            raise ValueError(f"lead time must be non-negative, got {lead_time_s}")
        if horizon_s <= 0.0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        if step_s <= 0.0:
            raise ValueError(f"step must be positive, got {step_s}")
        self.forecaster = forecaster
        self.capacity = capacity
        self.lead_time_s = lead_time_s
        self.horizon_s = horizon_s
        self.step_s = step_s
        self.fit_after_arrivals = (
            forecaster.min_arrivals
            if fit_after_arrivals is None
            else fit_after_arrivals
        )
        self.scale_in_headroom = scale_in_headroom
        self.act = act
        self.model: Optional[ForecastModel] = None
        self.planned_events: List[Tuple[float, Tuple[int, int]]] = []
        self._plan: Optional[ScheduledScalePlan] = None
        self._telemetry = None

    def attach_telemetry(self, telemetry) -> None:
        """Called by the session so forecast instants join its trace."""
        self._telemetry = telemetry

    def _emit_fit(self, now_s: float, model: ForecastModel) -> None:
        telemetry = self._telemetry
        if telemetry is None or not telemetry.enabled:
            return
        telemetry.tracer.instant(
            "forecast-fit",
            now_s,
            category="control",
            base_qps=round(model.base_qps, 3),
            amplitude=round(model.amplitude, 4),
            period_s=round(model.period_s, 6),
            residual_rms_qps=round(model.residual_rms_qps, 3),
            planned_events=len(self.planned_events),
        )
        telemetry.metrics.counter(
            "repro_forecast_fits_total",
            "Forecast model fits performed by the predictive scaler.",
        ).inc()
        telemetry.metrics.counter(
            "repro_forecast_planned_events_total",
            "Scale events emitted by forecast-built scale plans.",
        ).inc(len(self.planned_events))
        telemetry.metrics.gauge(
            "repro_forecast_residual_rms_qps",
            "RMS residual of the latest traffic forecast fit (QPS).",
        ).set(model.residual_rms_qps)

    def observe(
        self,
        batch: Batch,
        occupancy_s: float,
        records: Sequence[RequestRecord],
        current: Tuple[int, int],
    ) -> Optional[Tuple[int, int]]:
        """Fold arrivals; fit + plan once ready; then fire the timetable."""
        for request in batch.requests:
            self.forecaster.observe(request.arrival_s)
        if (
            self.model is None
            and self.forecaster.num_observed >= self.fit_after_arrivals
            and self.forecaster.ready
        ):
            self.model = self.forecaster.fit()
            now_s = batch.dispatch_s
            self.planned_events = plan_scale_events(
                self.model,
                self.capacity,
                start_s=now_s,
                horizon_s=self.horizon_s,
                step_s=self.step_s,
                lead_time_s=self.lead_time_s,
                initial_deployment=tuple(current),
                scale_in_headroom=self.scale_in_headroom,
            )
            self._plan = ScheduledScalePlan(self.planned_events)
            self._emit_fit(now_s, self.model)
        if not self.act or self._plan is None:
            return None
        decision = self._plan.observe(batch, occupancy_s, records, current)
        if decision is not None and tuple(decision) == tuple(current):
            return None  # already there: never pay a no-op migration
        return decision
