"""Seeded request generators: who asks for recommendations, and when.

Four arrival processes cover the serving regimes a recommendation system
actually sees:

* :class:`PoissonTraffic` -- memoryless steady load (the M/.../1 baseline);
* :class:`BurstyTraffic` -- a two-state Markov-modulated Poisson process
  (calm <-> burst), the standard model for flash-crowd traffic;
* :class:`DiurnalTraffic` -- an inhomogeneous Poisson process with a
  sinusoidal day/night rate profile, sampled by thinning;
* :class:`TraceReplayTraffic` -- Poisson arrivals whose *requesters* replay
  an empirical user trace (MovieLens watch histories or the Criteo user
  column), preserving real popularity skew for cache studies.

:class:`MultiTenantTraffic` composes any of the above into one front
door: each :class:`TenantSpec` contributes its own arrival process, user
population (offset into a disjoint id range) and p95 SLO, and the mixer
interleaves the streams by arrival time -- the multi-tenant workloads
(e.g. a MovieLens trace-replay tenant next to a bursty Criteo-class
tenant) the autoscaler is sized against.

Every generator is deterministic given (seed, stream): ``generate`` draws
from a fresh :func:`repro.experiments.common.seeded_rng` each call, so the
same generator object can be reused across sessions without coupling their
randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs.clock import SimClock

__all__ = [
    "Request",
    "PoissonTraffic",
    "BurstyTraffic",
    "DiurnalTraffic",
    "TraceReplayTraffic",
    "TenantSpec",
    "MultiTenantTraffic",
    "zipf_user_weights",
]


def _seeded_rng(seed: int, stream: int) -> np.random.Generator:
    # Lazy import: ``repro.experiments.__init__`` imports the serving
    # study, which imports this package -- a module-level import of the
    # shared helper here would close that cycle at import time.
    from repro.experiments.common import seeded_rng

    return seeded_rng(seed, stream)


@dataclass(frozen=True)
class Request:
    """One inference request hitting the front door at ``arrival_s``."""

    request_id: int
    arrival_s: float
    user: int
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.arrival_s < 0.0:
            raise ValueError(f"arrival time must be non-negative, got {self.arrival_s}")
        if self.user < 0:
            raise ValueError(f"user id must be non-negative, got {self.user}")
        if not self.tenant:
            raise ValueError("tenant name must be non-empty")


def zipf_user_weights(num_users: int, exponent: float = 1.1) -> np.ndarray:
    """Zipfian request-popularity weights over users (sums to 1).

    Real request streams are heavily skewed -- a small head of users (and
    hence cacheable queries) produces most of the traffic.  ``exponent``
    controls the skew; 0 degenerates to uniform.
    """
    if num_users < 1:
        raise ValueError("need at least one user")
    if exponent < 0.0:
        raise ValueError("Zipf exponent must be non-negative")
    ranks = np.arange(1, num_users + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return weights / weights.sum()


class _TrafficBase:
    """Shared user-sampling plumbing for the arrival processes."""

    name = "traffic"

    def __init__(
        self,
        num_users: int,
        seed: int = 0,
        stream: int = 0,
        user_skew: float = 1.1,
    ):
        if num_users < 1:
            raise ValueError("need at least one user")
        self.num_users = num_users
        self.seed = seed
        self.stream = stream
        self._weights = zipf_user_weights(num_users, user_skew)

    def _rng(self) -> np.random.Generator:
        return _seeded_rng(self.seed, self.stream)

    def _users(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Shuffle the rank->user assignment once (seeded) so "popular"
        # users are not always the low ids.
        permutation = _seeded_rng(self.seed, self.stream + 1).permutation(self.num_users)
        drawn = rng.choice(self.num_users, size=count, p=self._weights)
        return permutation[drawn]

    def _package(self, arrivals: Sequence[float], users: np.ndarray) -> List[Request]:
        return [
            Request(request_id=index, arrival_s=float(arrival), user=int(user))
            for index, (arrival, user) in enumerate(zip(arrivals, users))
        ]

    def generate(self, num_requests: int) -> List[Request]:
        raise NotImplementedError


class PoissonTraffic(_TrafficBase):
    """Homogeneous Poisson arrivals at ``rate_qps``."""

    name = "poisson"

    def __init__(
        self,
        rate_qps: float,
        num_users: int,
        seed: int = 0,
        stream: int = 0,
        user_skew: float = 1.1,
    ):
        super().__init__(num_users, seed=seed, stream=stream, user_skew=user_skew)
        if rate_qps <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.rate_qps = rate_qps

    def generate(self, num_requests: int) -> List[Request]:
        if num_requests < 1:
            raise ValueError("need at least one request")
        rng = self._rng()
        gaps = rng.exponential(1.0 / self.rate_qps, size=num_requests)
        arrivals = np.cumsum(gaps)
        return self._package(arrivals, self._users(rng, num_requests))


class BurstyTraffic(_TrafficBase):
    """Two-state MMPP: exponential sojourns in a calm and a burst state."""

    name = "bursty"

    def __init__(
        self,
        calm_qps: float,
        burst_qps: float,
        num_users: int,
        mean_calm_s: float = 0.5,
        mean_burst_s: float = 0.1,
        seed: int = 0,
        stream: int = 0,
        user_skew: float = 1.1,
    ):
        super().__init__(num_users, seed=seed, stream=stream, user_skew=user_skew)
        if calm_qps <= 0.0 or burst_qps <= 0.0:
            raise ValueError("arrival rates must be positive")
        if burst_qps < calm_qps:
            raise ValueError("burst rate must be >= calm rate")
        if mean_calm_s <= 0.0 or mean_burst_s <= 0.0:
            raise ValueError("mean state sojourns must be positive")
        self.calm_qps = calm_qps
        self.burst_qps = burst_qps
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s

    def generate(self, num_requests: int) -> List[Request]:
        if num_requests < 1:
            raise ValueError("need at least one request")
        rng = self._rng()
        arrivals: List[float] = []
        clock = SimClock()
        bursting = False
        state_end = clock.now_s + rng.exponential(self.mean_calm_s)
        while len(arrivals) < num_requests:
            rate = self.burst_qps if bursting else self.calm_qps
            gap = rng.exponential(1.0 / rate)
            if clock.now_s + gap <= state_end:
                arrivals.append(clock.advance(gap))
            else:
                # The memoryless arrival clock restarts at the state switch.
                clock.advance_to(state_end)
                bursting = not bursting
                mean = self.mean_burst_s if bursting else self.mean_calm_s
                state_end = clock.now_s + rng.exponential(mean)
        return self._package(arrivals, self._users(rng, num_requests))


class DiurnalTraffic(_TrafficBase):
    """Inhomogeneous Poisson with a sinusoidal (day/night) rate profile.

    ``rate(t) = base_qps * (1 + amplitude * sin(2 pi t / period_s))``,
    sampled by Lewis-Shedler thinning against the peak rate.
    """

    name = "diurnal"

    def __init__(
        self,
        base_qps: float,
        num_users: int,
        amplitude: float = 0.8,
        period_s: float = 1.0,
        seed: int = 0,
        stream: int = 0,
        user_skew: float = 1.1,
    ):
        super().__init__(num_users, seed=seed, stream=stream, user_skew=user_skew)
        if base_qps <= 0.0:
            raise ValueError("base rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0.0:
            raise ValueError("period must be positive")
        self.base_qps = base_qps
        self.amplitude = amplitude
        self.period_s = period_s

    def rate_at(self, time_s: float) -> float:
        """Instantaneous arrival rate at ``time_s``."""
        phase = 2.0 * np.pi * time_s / self.period_s
        return self.base_qps * (1.0 + self.amplitude * np.sin(phase))

    def forecast_model(self):
        """The generator's own rate curve as a
        :class:`~repro.serving.forecast.ForecastModel` -- the *oracle*
        forecast: what a fitted model converges to with infinite
        evidence (zero residual by construction)."""
        from repro.serving.forecast import ForecastModel

        return ForecastModel(
            base_qps=self.base_qps,
            amplitude=self.amplitude,
            period_s=self.period_s,
        )

    def generate(self, num_requests: int) -> List[Request]:
        if num_requests < 1:
            raise ValueError("need at least one request")
        rng = self._rng()
        peak = self.base_qps * (1.0 + self.amplitude)
        arrivals: List[float] = []
        clock = SimClock()
        while len(arrivals) < num_requests:
            now = clock.advance(rng.exponential(1.0 / peak))
            if rng.random() * peak <= self.rate_at(now):
                arrivals.append(now)
        return self._package(arrivals, self._users(rng, num_requests))


class TraceReplayTraffic(_TrafficBase):
    """Poisson arrivals whose requesters replay an empirical user trace."""

    name = "trace-replay"

    def __init__(
        self,
        trace: Sequence[int],
        rate_qps: float,
        num_users: Optional[int] = None,
        seed: int = 0,
        stream: int = 0,
        shuffle: bool = True,
    ):
        users = np.asarray(list(trace), dtype=np.int64)
        if users.size == 0:
            raise ValueError("trace must be non-empty")
        if users.min() < 0:
            raise ValueError("trace user ids must be non-negative")
        resolved_users = int(users.max()) + 1 if num_users is None else num_users
        super().__init__(resolved_users, seed=seed, stream=stream, user_skew=0.0)
        if users.max() >= self.num_users:
            raise ValueError("trace contains user ids beyond num_users")
        if rate_qps <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.rate_qps = rate_qps
        self.shuffle = shuffle
        self.trace = users

    @classmethod
    def from_movielens(
        cls, dataset, rate_qps: float, seed: int = 0, stream: int = 0
    ) -> "TraceReplayTraffic":
        """Replay a MovieLens dataset: each user requests once per watch.

        Users with longer histories request more often, so the replayed
        stream carries the dataset's empirical popularity skew.
        """
        trace = [
            user
            for user, history in enumerate(dataset.histories)
            for _ in range(max(1, len(history)))
        ]
        return cls(
            trace,
            rate_qps,
            num_users=dataset.num_users,
            seed=seed,
            stream=stream,
        )

    @classmethod
    def from_criteo(
        cls, dataset, rate_qps: float, seed: int = 0, stream: int = 0
    ) -> "TraceReplayTraffic":
        """Replay Criteo rows; the first sparse column is the requester id."""
        trace = dataset.sparse[:, 0]
        return cls(
            trace,
            rate_qps,
            num_users=int(dataset.sparse[:, 0].max()) + 1,
            seed=seed,
            stream=stream,
            shuffle=False,  # keep the dataset's own row order
        )

    def generate(self, num_requests: int) -> List[Request]:
        if num_requests < 1:
            raise ValueError("need at least one request")
        rng = self._rng()
        trace = self.trace
        if self.shuffle:
            trace = trace[rng.permutation(trace.size)]
        repeats = int(np.ceil(num_requests / trace.size))
        users = np.tile(trace, repeats)[:num_requests]
        gaps = rng.exponential(1.0 / self.rate_qps, size=num_requests)
        return self._package(np.cumsum(gaps), users)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared serving deployment.

    ``share`` is the tenant's fraction of the mixed request volume
    (normalised across tenants); ``p95_slo_ms`` is the latency contract
    the autoscaler holds the deployment to for this tenant's requests.
    """

    name: str
    traffic: object  # any generator above: .generate(n) and .num_users
    share: float = 1.0
    p95_slo_ms: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.share <= 0.0:
            raise ValueError(f"tenant share must be positive, got {self.share}")
        if self.p95_slo_ms <= 0.0:
            raise ValueError(f"p95 SLO must be positive, got {self.p95_slo_ms}")


class MultiTenantTraffic:
    """Interleave several tenants' arrival processes into one stream.

    Each tenant keeps its own generator (and hence its own seeded
    randomness), its requests are tagged with the tenant name, and its
    user ids are offset into a disjoint range -- tenant 0 owns
    ``[0, n_0)``, tenant 1 owns ``[n_0, n_0 + n_1)``, and so on -- so a
    session workload built per tenant stays addressable by plain modulo
    indexing and tenants never alias each other's cache keys.
    """

    name = "multi-tenant"

    def __init__(self, tenants: Sequence[TenantSpec]):
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        self.tenants = list(tenants)
        self._offsets: Dict[str, int] = {}
        offset = 0
        for tenant in self.tenants:
            self._offsets[tenant.name] = offset
            offset += tenant.traffic.num_users
        self.num_users = offset

    def user_offset(self, tenant_name: str) -> int:
        """Start of ``tenant_name``'s user-id range in the mixed stream."""
        return self._offsets[tenant_name]

    def slo_for(self, tenant_name: str) -> float:
        """The p95 latency contract of ``tenant_name`` (ms)."""
        for tenant in self.tenants:
            if tenant.name == tenant_name:
                return tenant.p95_slo_ms
        raise KeyError(f"unknown tenant {tenant_name!r}")

    def _request_counts(self, num_requests: int) -> List[int]:
        """Split the volume by share: largest-remainder rounding, with a
        floor of one request per tenant (every SLO needs evidence)."""
        total_share = sum(tenant.share for tenant in self.tenants)
        exact = [
            num_requests * tenant.share / total_share for tenant in self.tenants
        ]
        counts = [int(value) for value in exact]
        remainders = sorted(
            range(len(exact)),
            key=lambda index: (counts[index] - exact[index], index),
        )
        for index in remainders[: num_requests - sum(counts)]:
            counts[index] += 1
        for index in range(len(counts)):
            if counts[index] == 0:
                donor = max(range(len(counts)), key=counts.__getitem__)
                if counts[donor] > 1:
                    counts[donor] -= 1
                    counts[index] = 1
        return counts

    def generate(self, num_requests: int) -> List[Request]:
        if num_requests < len(self.tenants):
            raise ValueError(
                f"need at least one request per tenant "
                f"({len(self.tenants)}), got {num_requests}"
            )
        mixed: List[Request] = []
        for tenant, count in zip(self.tenants, self._request_counts(num_requests)):
            offset = self._offsets[tenant.name]
            for request in tenant.traffic.generate(count):
                mixed.append(
                    replace(
                        request,
                        user=request.user + offset,
                        tenant=tenant.name,
                    )
                )
        mixed.sort(key=lambda request: (request.arrival_s, request.tenant))
        return [
            replace(request, request_id=index)
            for index, request in enumerate(mixed)
        ]
