"""Event-driven micro-batching schedulers with admission control.

The serving engine is a serial resource (one fabric, or one scatter-gather
shard group): it processes one micro-batch at a time.  The scheduler turns
a timestamped request stream into dispatched batches under the classic
two-knob admission policy:

* ``max_batch_size`` -- a batch dispatches immediately once full;
* ``max_wait_s`` -- a partial batch dispatches when its admission window
  expires (timer semantics: the window opens when the engine is free and
  the first request is waiting, and the scheduler holds the batch for the
  full window hoping for stragglers).

``max_wait_s = 0`` degenerates to pure backlog batching: whatever is
queued when the engine frees is dispatched at once -- the latency-optimal
setting at low load, the throughput-pessimal one under burst.

:class:`MicroBatchScheduler` keeps both knobs fixed.
:class:`AdaptiveMicroBatchScheduler` is the SLO-aware policy: it watches
the p95 of recently completed requests and retunes the knobs between
batches -- tightening the wait window and raising the batch cap when the
tail overshoots the target (drain the queue, amortise harder), and
relaxing the window back when there is latency headroom to spend on
batching efficiency.  Both knobs always stay inside the configured
bounds, so the fixed-policy admission invariants (batch size cap,
bounded hold time) survive adaptation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.clock import SimClock
from repro.serving.traffic import Request

__all__ = [
    "MicroBatchConfig",
    "AdaptiveBatchConfig",
    "Batch",
    "MicroBatchScheduler",
    "AdaptiveMicroBatchScheduler",
]


@dataclass(frozen=True)
class MicroBatchConfig:
    """Admission-control knobs of the micro-batching policy."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max batch size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0.0:
            raise ValueError(f"max wait must be non-negative, got {self.max_wait_s}")


@dataclass(frozen=True)
class AdaptiveBatchConfig:
    """Bounds and control law of the SLO-aware adaptive policy.

    The controller runs once every ``window`` dispatched batches: it
    compares the p95 of the engine-completion latencies observed in the
    window against ``target_p95_s``.  Overshoot multiplies the wait
    window by ``shrink`` and doubles the batch cap (drain mode);
    undershoot below ``relax_watermark * target`` multiplies the wait by
    ``grow`` and halves the cap back towards ``min_batch_size``
    (efficiency mode).  Knobs never leave their configured bounds.
    """

    target_p95_s: float
    window: int = 8
    min_batch_size: int = 1
    max_batch_size: int = 64
    min_wait_s: float = 0.0
    max_wait_s: float = 0.01
    shrink: float = 0.5
    grow: float = 2.0
    relax_watermark: float = 0.5

    def __post_init__(self) -> None:
        if self.target_p95_s <= 0.0:
            raise ValueError(f"target p95 must be positive, got {self.target_p95_s}")
        if self.window < 1:
            raise ValueError(f"control window must be >= 1, got {self.window}")
        if not 1 <= self.min_batch_size <= self.max_batch_size:
            raise ValueError(
                f"need 1 <= min_batch_size <= max_batch_size, got "
                f"[{self.min_batch_size}, {self.max_batch_size}]"
            )
        if not 0.0 <= self.min_wait_s <= self.max_wait_s:
            raise ValueError(
                f"need 0 <= min_wait_s <= max_wait_s, got "
                f"[{self.min_wait_s}, {self.max_wait_s}]"
            )
        if not 0.0 < self.shrink < 1.0:
            raise ValueError(f"shrink factor must be in (0, 1), got {self.shrink}")
        if self.grow <= 1.0:
            raise ValueError(f"grow factor must be > 1, got {self.grow}")
        if not 0.0 < self.relax_watermark < 1.0:
            raise ValueError(
                f"relax watermark must be in (0, 1), got {self.relax_watermark}"
            )


@dataclass
class Batch:
    """One dispatched micro-batch."""

    requests: List[Request]
    open_s: float  # when the admission window opened
    dispatch_s: float  # when the batch entered the engine
    #: Requests already arrived but not yet served at dispatch (batch
    #: members included) -- the backlog the telemetry plane reports.
    queue_depth: int = 0

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def queue_delays_s(self) -> List[float]:
        """Per-request time spent between arrival and dispatch."""
        return [self.dispatch_s - request.arrival_s for request in self.requests]


class MicroBatchScheduler:
    """Forms and dispatches micro-batches over a serial engine."""

    def __init__(self, config: Optional[MicroBatchConfig] = None):
        # A fresh default per instance: sharing one config object across
        # schedulers couples them the moment any policy retunes its knobs.
        self.config = config if config is not None else MicroBatchConfig()
        #: Optional :class:`repro.obs.Telemetry` the owning session plants
        #: so adaptive policies can annotate their retune decisions.
        self.telemetry = None
        #: Optional :class:`repro.serving.resilience.FaultContext` the
        #: owning session plants so the fault plane can emit its
        #: window-begin/end telemetry as the free-time clock advances.
        self.faults = None

    def _admission_limits(self) -> Tuple[int, float]:
        """(batch cap, wait window) in effect for the next batch."""
        return self.config.max_batch_size, self.config.max_wait_s

    def _observe(self, batch: Batch, service_s: float) -> None:
        """Hook for adaptive policies: one batch finished serving."""

    def run(
        self,
        requests: Sequence[Request],
        service: Callable[[Batch], float],
    ) -> List[Batch]:
        """Simulate the serving timeline.

        ``service(batch) -> seconds`` performs the batch (cache lookups +
        engine work, done by the session) and returns how long the engine
        is occupied; the scheduler advances its free-time clock by that
        amount.  Returns every dispatched batch in dispatch order.
        """
        ordered = sorted(requests, key=lambda request: request.arrival_s)
        arrivals = [request.arrival_s for request in ordered]
        batches: List[Batch] = []
        # The engine-free clock: SimClock.advance is one float addition,
        # so the timeline is bitwise the one the former bare-float
        # arithmetic produced.
        clock = SimClock()
        index = 0
        while index < len(ordered):
            batch_cap, wait_s = self._admission_limits()
            batch_start = index
            open_s = clock.latest(ordered[index].arrival_s)
            deadline = open_s + wait_s
            members = [ordered[index]]
            index += 1
            while (
                len(members) < batch_cap
                and index < len(ordered)
                and ordered[index].arrival_s <= deadline
            ):
                members.append(ordered[index])
                index += 1
            if len(members) == batch_cap:
                # Filled early: dispatch the moment the last member arrived
                # (or immediately, if they were all queued already).
                dispatch_s = max(open_s, members[-1].arrival_s)
            else:
                # Partial batch: the timer runs out the full window.
                dispatch_s = deadline
            # Backlog at dispatch: everything arrived by then and not yet
            # served, including this batch's own members.
            queue_depth = bisect_right(arrivals, dispatch_s) - batch_start
            batch = Batch(
                requests=members,
                open_s=open_s,
                dispatch_s=dispatch_s,
                queue_depth=queue_depth,
            )
            service_s = service(batch)
            if service_s < 0.0:
                raise ValueError(f"service time must be non-negative, got {service_s}")
            clock.advance_to(dispatch_s)
            clock.advance(service_s)
            batches.append(batch)
            if self.faults is not None:
                self.faults.observe_progress(clock.now_s)
            self._observe(batch, service_s)
        return batches


class AdaptiveMicroBatchScheduler(MicroBatchScheduler):
    """SLO-aware micro-batching: retunes the two knobs from the p95 gap.

    The scheduler cannot see end-to-end completions (cache hits finish
    early; the session owns that accounting), so the control signal is the
    *engine-completion* latency ``dispatch + service - arrival`` of every
    request in a batch -- a conservative upper bound on what any request
    in the batch experienced.
    """

    def __init__(self, config: AdaptiveBatchConfig):
        self.adaptive = config
        self._wait_s = min(
            max(config.target_p95_s / 4.0, config.min_wait_s), config.max_wait_s
        )
        self._batch_cap = min(max(8, config.min_batch_size), config.max_batch_size)
        self._window_latencies: List[float] = []
        self._batches_seen = 0
        #: One entry per control decision: the knob values it selected.
        self.knob_history: List[Dict[str, float]] = []
        super().__init__(self._snapshot())

    def _snapshot(self) -> MicroBatchConfig:
        return MicroBatchConfig(
            max_batch_size=self._batch_cap, max_wait_s=self._wait_s
        )

    def _admission_limits(self) -> Tuple[int, float]:
        return self._batch_cap, self._wait_s

    def _observe(self, batch: Batch, service_s: float) -> None:
        completion_s = batch.dispatch_s + service_s
        self._window_latencies.extend(
            completion_s - request.arrival_s for request in batch.requests
        )
        self._batches_seen += 1
        if self._batches_seen % self.adaptive.window == 0:
            self._adapt(now_s=completion_s)

    def _adapt(self, now_s: float = 0.0) -> None:
        config = self.adaptive
        p95_s = float(np.percentile(self._window_latencies, 95))
        self._window_latencies.clear()
        if p95_s > config.target_p95_s:
            # Overshoot: stop holding requests for stragglers and let the
            # engine amortise/pipeline over bigger batches to drain.
            self._wait_s = max(config.min_wait_s, self._wait_s * config.shrink)
            self._batch_cap = min(config.max_batch_size, self._batch_cap * 2)
        elif p95_s < config.relax_watermark * config.target_p95_s:
            # Headroom: spend some of it on batching efficiency.  The grown
            # window needs a floor so a zero wait can recover.
            grown = max(self._wait_s, 0.1 * config.target_p95_s / config.grow)
            self._wait_s = min(config.max_wait_s, grown * config.grow)
            self._batch_cap = max(config.min_batch_size, self._batch_cap // 2)
        self.config = self._snapshot()
        self.knob_history.append(
            {
                "p95_s": p95_s,
                "max_wait_s": self._wait_s,
                "max_batch_size": float(self._batch_cap),
            }
        )
        telemetry = self.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.tracer.instant(
                "batch-retune",
                now_s,
                p95_s=p95_s,
                target_p95_s=config.target_p95_s,
                max_wait_s=self._wait_s,
                max_batch_size=self._batch_cap,
            )
