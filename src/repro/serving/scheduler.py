"""Event-driven micro-batching scheduler with admission control.

The serving engine is a serial resource (one fabric, or one scatter-gather
shard group): it processes one micro-batch at a time.  The scheduler turns
a timestamped request stream into dispatched batches under the classic
two-knob admission policy:

* ``max_batch_size`` -- a batch dispatches immediately once full;
* ``max_wait_s`` -- a partial batch dispatches when its admission window
  expires (timer semantics: the window opens when the engine is free and
  the first request is waiting, and the scheduler holds the batch for the
  full window hoping for stragglers).

``max_wait_s = 0`` degenerates to pure backlog batching: whatever is
queued when the engine frees is dispatched at once -- the latency-optimal
setting at low load, the throughput-pessimal one under burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.serving.traffic import Request

__all__ = ["MicroBatchConfig", "Batch", "MicroBatchScheduler"]


@dataclass(frozen=True)
class MicroBatchConfig:
    """Admission-control knobs of the micro-batching policy."""

    max_batch_size: int = 8
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(
                f"max batch size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0.0:
            raise ValueError(f"max wait must be non-negative, got {self.max_wait_s}")


@dataclass
class Batch:
    """One dispatched micro-batch."""

    requests: List[Request]
    open_s: float  # when the admission window opened
    dispatch_s: float  # when the batch entered the engine

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def queue_delays_s(self) -> List[float]:
        """Per-request time spent between arrival and dispatch."""
        return [self.dispatch_s - request.arrival_s for request in self.requests]


class MicroBatchScheduler:
    """Forms and dispatches micro-batches over a serial engine."""

    def __init__(self, config: MicroBatchConfig = MicroBatchConfig()):
        self.config = config

    def run(
        self,
        requests: Sequence[Request],
        service: Callable[[Batch], float],
    ) -> List[Batch]:
        """Simulate the serving timeline.

        ``service(batch) -> seconds`` performs the batch (cache lookups +
        engine work, done by the session) and returns how long the engine
        is occupied; the scheduler advances its free-time clock by that
        amount.  Returns every dispatched batch in dispatch order.
        """
        ordered = sorted(requests, key=lambda request: request.arrival_s)
        batches: List[Batch] = []
        free_s = 0.0
        index = 0
        while index < len(ordered):
            open_s = max(ordered[index].arrival_s, free_s)
            deadline = open_s + self.config.max_wait_s
            members = [ordered[index]]
            index += 1
            while (
                len(members) < self.config.max_batch_size
                and index < len(ordered)
                and ordered[index].arrival_s <= deadline
            ):
                members.append(ordered[index])
                index += 1
            if len(members) == self.config.max_batch_size:
                # Filled early: dispatch the moment the last member arrived
                # (or immediately, if they were all queued already).
                dispatch_s = max(open_s, members[-1].arrival_s)
            else:
                # Partial batch: the timer runs out the full window.
                dispatch_s = deadline
            batch = Batch(requests=members, open_s=open_s, dispatch_s=dispatch_s)
            service_s = service(batch)
            if service_s < 0.0:
                raise ValueError(f"service time must be non-negative, got {service_s}")
            free_s = dispatch_s + service_s
            batches.append(batch)
        return batches
