"""Serving SLO metrics: latency percentiles, throughput, energy/request.

The paper's metric is 1/latency at batch 1; a live service is judged on
its *tail*: the p95/p99 latency experienced under queueing, batching and
bursty arrivals, the sustained throughput over the run, and (for an
in-memory accelerator whose selling point is efficiency) the energy spent
per request -- including the cache and merge traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.energy.accounting import Cost, Ledger
from repro.serving.traffic import Request

__all__ = ["RequestRecord", "SLOReport", "summarize", "summarize_tenants"]


@dataclass(frozen=True)
class RequestRecord:
    """One request's journey through the serving stack."""

    request: Request
    completion_s: float
    batch_size: int
    cache_hit: bool
    items: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.completion_s < self.request.arrival_s:
            raise ValueError("completion cannot precede arrival")
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion (queueing included)."""
        return self.completion_s - self.request.arrival_s


@dataclass(frozen=True)
class SLOReport:
    """Aggregate serving metrics of one simulated session."""

    label: str
    num_requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    offered_qps: float
    sustained_qps: float
    energy_per_request_uj: float
    cache_hit_rate: float
    mean_batch_size: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_requests": self.num_requests,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "energy_per_request_uj": self.energy_per_request_uj,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": self.mean_batch_size,
        }

    def format_row(self) -> str:
        return (
            f"  {self.label:<28s} p50={self.p50_ms:8.3f}ms p95={self.p95_ms:8.3f}ms "
            f"p99={self.p99_ms:8.3f}ms qps={self.sustained_qps:9.1f} "
            f"E/req={self.energy_per_request_uj:10.4f}uJ "
            f"hit={self.cache_hit_rate * 100.0:5.1f}% "
            f"batch={self.mean_batch_size:4.1f}"
        )


def summarize(
    records: Sequence[RequestRecord],
    ledger: Ledger,
    label: str = "session",
) -> SLOReport:
    """Fold per-request records + the session ledger into an SLO report."""
    if not records:
        raise ValueError("cannot summarise an empty session")
    latencies_ms = np.array([record.latency_s * 1e3 for record in records])
    arrivals = np.array([record.request.arrival_s for record in records])
    completions = np.array([record.completion_s for record in records])
    span_s = float(arrivals.max() - arrivals.min())
    makespan_s = float(completions.max() - arrivals.min())
    total_energy_uj = ledger.total().energy_uj
    hits = sum(1 for record in records if record.cache_hit)
    return SLOReport(
        label=label,
        num_requests=len(records),
        p50_ms=float(np.percentile(latencies_ms, 50)),
        p95_ms=float(np.percentile(latencies_ms, 95)),
        p99_ms=float(np.percentile(latencies_ms, 99)),
        mean_ms=float(latencies_ms.mean()),
        max_ms=float(latencies_ms.max()),
        offered_qps=(len(records) - 1) / span_s if span_s > 0.0 else float("inf"),
        sustained_qps=len(records) / makespan_s if makespan_s > 0.0 else float("inf"),
        energy_per_request_uj=total_energy_uj / len(records),
        cache_hit_rate=hits / len(records),
        mean_batch_size=float(np.mean([record.batch_size for record in records])),
    )


def summarize_tenants(
    records: Sequence[RequestRecord],
    ledger: Ledger,
    label: str = "session",
) -> Dict[str, SLOReport]:
    """Per-tenant SLO reports of one mixed-tenant session.

    Latency percentiles and throughput come from each tenant's own
    records; the session ledger is global (the engine serves all tenants
    on shared hardware), so energy is attributed pro rata by request
    count -- the fair-share charging model of a shared deployment.
    """
    if not records:
        raise ValueError("cannot summarise an empty session")
    by_tenant: Dict[str, list] = {}
    for record in records:
        by_tenant.setdefault(record.request.tenant, []).append(record)
    total = ledger.total()
    reports: Dict[str, SLOReport] = {}
    for tenant, tenant_records in sorted(by_tenant.items()):
        share = len(tenant_records) / len(records)
        tenant_ledger = Ledger(name=f"{label}/{tenant}")
        tenant_ledger.charge(
            "Fair share",
            Cost(
                energy_pj=total.energy_pj * share,
                latency_ns=total.latency_ns * share,
            ),
        )
        reports[tenant] = summarize(
            tenant_records, tenant_ledger, label=f"{label} [{tenant}]"
        )
    return reports
