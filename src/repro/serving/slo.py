"""Serving SLO metrics: latency percentiles, throughput, energy/request.

The paper's metric is 1/latency at batch 1; a live service is judged on
its *tail*: the p95/p99 latency experienced under queueing, batching and
bursty arrivals, the sustained throughput over the run, and (for an
in-memory accelerator whose selling point is efficiency) the energy spent
per request -- including the cache and merge traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.energy.accounting import Cost, Ledger
from repro.serving.traffic import Request

__all__ = [
    "RequestRecord",
    "SLOReport",
    "summarize",
    "summarize_tenants",
    "slo_violation_windows",
]


@dataclass(frozen=True)
class RequestRecord:
    """One request's journey through the serving stack.

    ``shed`` marks a request the admission controller rejected at the
    front door (``completion_s`` is the rejection time; no items were
    served); ``degraded`` marks one served with a reduced top-k to
    protect the SLO (or, under fault injection, a partial scatter-gather
    merged from the surviving shards); ``failed`` marks one the fleet
    accepted but could not answer -- every serving attempt exhausted
    under fault injection (``completion_s`` is when the failure was
    final).
    """

    request: Request
    completion_s: float
    batch_size: int
    cache_hit: bool
    items: Tuple[int, ...]
    shed: bool = False
    degraded: bool = False
    failed: bool = False

    def __post_init__(self) -> None:
        if self.completion_s < self.request.arrival_s:
            raise ValueError("completion cannot precede arrival")
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if self.shed and self.items:
            raise ValueError("a shed request cannot carry served items")
        if self.failed and self.items:
            raise ValueError("a failed request cannot carry served items")
        if self.failed and self.shed:
            raise ValueError("a request is either shed (front door) or "
                             "failed (serve path), not both")

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion (queueing included)."""
        return self.completion_s - self.request.arrival_s


@dataclass(frozen=True)
class SLOReport:
    """Aggregate serving metrics of one simulated session.

    Latency percentiles and ``energy_per_request_uj`` are NaN when the
    session answered nothing (all shed / all failed): there is no tail
    to report, and 0.0 would read as a perfect one.  ``format_row``
    renders those NaNs as ``-``.
    """

    label: str
    num_requests: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    offered_qps: float
    sustained_qps: float
    energy_per_request_uj: float
    cache_hit_rate: float
    mean_batch_size: float
    shed_count: int = 0
    degraded_count: int = 0
    #: Requests the fleet accepted but could not answer (fault injection).
    failed_count: int = 0
    #: Mean time to recover of the run's fault plan (None = no downtime
    #: was scheduled -- the healthy-fleet dash in reports).
    mttr_s: Optional[float] = None
    #: Total dollars billed to the session's price ledger (None = the
    #: session ran without a price book -- energy-only accounting).
    dollars_total: Optional[float] = None

    @property
    def served_count(self) -> int:
        """Requests that entered the serve path (not shed at the door)."""
        return self.num_requests - self.shed_count

    @property
    def answered_count(self) -> int:
        """Requests that actually received recommendations."""
        return self.served_count - self.failed_count

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests rejected at the front door."""
        return self.shed_count / self.num_requests if self.num_requests else 0.0

    @property
    def degraded_rate(self) -> float:
        """Fraction of *served* requests answered with a reduced top-k."""
        return self.degraded_count / self.served_count if self.served_count else 0.0

    @property
    def availability(self) -> float:
        """Fraction of accepted requests that received an answer.

        Shed requests are an explicit admission policy, not a failure,
        so they count against neither numerator nor denominator; a
        zero-fault run reports 1.0.
        """
        if not self.served_count:
            return 1.0
        return 1.0 - self.failed_count / self.served_count

    @property
    def error_rate(self) -> float:
        """Fraction of accepted requests the fleet failed to answer."""
        if not self.served_count:
            return 0.0
        return self.failed_count / self.served_count

    @property
    def dollars_per_1k_requests(self) -> Optional[float]:
        """Dollar cost per thousand answered requests (None = unpriced,
        NaN = priced but nothing was answered)."""
        if self.dollars_total is None:
            return None
        if not self.answered_count:
            return float("nan")
        return 1e3 * self.dollars_total / self.answered_count

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_requests": self.num_requests,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "max_ms": self.max_ms,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "energy_per_request_uj": self.energy_per_request_uj,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_batch_size": self.mean_batch_size,
            "shed_count": self.shed_count,
            "degraded_count": self.degraded_count,
            "failed_count": self.failed_count,
            "availability": self.availability,
            "error_rate": self.error_rate,
            "mttr_s": self.mttr_s,
            "dollars_total": self.dollars_total,
        }

    def format_row(self) -> str:
        mttr = f"{self.mttr_s * 1e3:.1f}ms" if self.mttr_s is not None else "-"

        def _fmt(value: float, spec: str) -> str:
            # A NaN column (nothing answered) renders as a dash, not as
            # a literal "nan" pretending to be a measurement.
            width = spec.split(".")[0]
            return f"{'-':>{width}s}" if np.isnan(value) else f"{value:{spec}}"

        row = (
            f"  {self.label:<28s} p50={_fmt(self.p50_ms, '8.3f')}ms "
            f"p95={_fmt(self.p95_ms, '8.3f')}ms "
            f"p99={_fmt(self.p99_ms, '8.3f')}ms qps={self.sustained_qps:9.1f} "
            f"E/req={_fmt(self.energy_per_request_uj, '10.4f')}uJ "
            f"hit={self.cache_hit_rate * 100.0:5.1f}% "
            f"batch={self.mean_batch_size:4.1f} "
            f"avail={self.availability * 100.0:6.2f}% "
            f"err={self.error_rate * 100.0:5.2f}% "
            f"mttr={mttr}"
        )
        if self.dollars_total is not None:
            row += f" $={self.dollars_total:9.6f}"
        if self.shed_count or self.degraded_count:
            row += (
                f" shed={self.shed_count}({self.shed_rate * 100.0:.1f}%)"
                f" deg={self.degraded_count}({self.degraded_rate * 100.0:.1f}%)"
            )
        return row


def summarize(
    records: Sequence[RequestRecord],
    ledger: Ledger,
    label: str = "session",
    mttr_s: Optional[float] = None,
    price_ledger=None,
) -> SLOReport:
    """Fold per-request records + the session ledger into an SLO report.

    Latency percentiles, cache hit rate, batch sizes and the energy
    denominator cover *answered* requests only: a shed request received
    no recommendations, and letting its (tiny) time-to-rejection into
    the tail would reward shedding with better percentiles; a failed
    request likewise received nothing, so its (timeout-bound) latency
    belongs in the availability column, not the tail.  Shed and failed
    volumes are reported separately (``shed_count`` / ``failed_count`` /
    ``availability``); sustained QPS is goodput (answered requests over
    the makespan).  ``mttr_s`` is the run's fault-plan mean time to
    recover (None for a healthy fleet).

    A session where everything was shed or failed has no latency tail
    and no energy denominator: the percentile and energy-per-request
    columns report NaN (rendered as ``-`` by
    :meth:`SLOReport.format_row`), never a fabricated 0.0.  Degenerate
    time bases are handled the same way: when every arrival shares one
    timestamp (``span_s == 0``) the offered rate reports 0.0 rather
    than infinity -- one instant of traffic does not define a rate.

    ``price_ledger`` (a :class:`~repro.serving.pricing.PriceLedger`)
    joins the dollar plane in: its total lands in ``dollars_total`` and
    the per-1k-requests derivation, next to the energy columns.
    """
    if not records:
        raise ValueError("cannot summarise an empty session")
    served = [record for record in records if not record.shed]
    answered = [record for record in served if not record.failed]
    latencies_ms = (
        np.array([record.latency_s * 1e3 for record in answered])
        if answered
        else None
    )
    arrivals = np.array([record.request.arrival_s for record in records])
    completions = np.array([record.completion_s for record in records])
    span_s = float(arrivals.max() - arrivals.min())
    makespan_s = float(completions.max() - arrivals.min())
    total_energy_uj = ledger.total().energy_uj
    hits = sum(1 for record in answered if record.cache_hit)
    nan = float("nan")
    return SLOReport(
        label=label,
        num_requests=len(records),
        p50_ms=float(np.percentile(latencies_ms, 50)) if answered else nan,
        p95_ms=float(np.percentile(latencies_ms, 95)) if answered else nan,
        p99_ms=float(np.percentile(latencies_ms, 99)) if answered else nan,
        mean_ms=float(latencies_ms.mean()) if answered else nan,
        max_ms=float(latencies_ms.max()) if answered else nan,
        offered_qps=(len(records) - 1) / span_s if span_s > 0.0 else 0.0,
        sustained_qps=(
            len(answered) / makespan_s if makespan_s > 0.0 else 0.0
        ),
        energy_per_request_uj=(
            total_energy_uj / len(answered) if answered else nan
        ),
        cache_hit_rate=hits / max(1, len(answered)),
        mean_batch_size=(
            float(np.mean([record.batch_size for record in answered]))
            if answered
            else 0.0
        ),
        shed_count=len(records) - len(served),
        degraded_count=sum(1 for record in served if record.degraded),
        failed_count=len(served) - len(answered),
        mttr_s=mttr_s,
        dollars_total=(
            price_ledger.total() if price_ledger is not None else None
        ),
    )


def slo_violation_windows(
    records: Sequence[RequestRecord],
    p95_target_s: float,
    window_s: float,
) -> Tuple[int, int]:
    """Count fixed-width time windows whose p95 breaks the contract.

    A whole-run p95 hides *when* the tail hurt: a reactive scaler that
    melts down for one ramp and is perfect elsewhere can post the same
    run-level p95 as a predictive one that was merely mediocre
    throughout.  Bucketing answered requests into ``window_s``-wide
    windows (by completion time, from the first arrival) and judging
    each window's own p95 against ``p95_target_s`` measures the duration
    of the pain instead -- the headline metric of the ``E-forecast``
    reactive-vs-predictive comparison.

    Returns ``(violated, occupied)`` where ``occupied`` counts windows
    with at least one answered completion (empty windows have no tail to
    judge).  Shed and failed requests are excluded for the same reason
    they are excluded from :func:`summarize`'s percentiles.

    >>> from repro.serving.traffic import Request
    >>> records = [
    ...     RequestRecord(
    ...         request=Request(request_id=i, arrival_s=float(i), user=0),
    ...         completion_s=float(i) + latency,
    ...         batch_size=1,
    ...         cache_hit=False,
    ...         items=(0,),
    ...     )
    ...     for i, latency in enumerate([0.01, 0.01, 0.5, 0.5])
    ... ]
    >>> slo_violation_windows(records, p95_target_s=0.1, window_s=2.0)
    (1, 2)
    """
    if p95_target_s <= 0.0:
        raise ValueError(f"p95 target must be positive, got {p95_target_s}")
    if window_s <= 0.0:
        raise ValueError(f"window must be positive, got {window_s}")
    answered = [
        record for record in records if not record.shed and not record.failed
    ]
    if not answered:
        return (0, 0)
    origin_s = min(record.request.arrival_s for record in answered)
    buckets: Dict[int, list] = {}
    for record in answered:
        index = int((record.completion_s - origin_s) // window_s)
        buckets.setdefault(index, []).append(record.latency_s)
    violated = sum(
        1
        for latencies in buckets.values()
        if float(np.percentile(latencies, 95)) > p95_target_s
    )
    return (violated, len(buckets))


def summarize_tenants(
    records: Sequence[RequestRecord],
    ledger: Ledger,
    label: str = "session",
) -> Dict[str, SLOReport]:
    """Per-tenant SLO reports of one mixed-tenant session.

    Latency percentiles and throughput come from each tenant's own
    records; the session ledger is global (the engine serves all tenants
    on shared hardware), so energy is attributed pro rata by *served*
    request count -- the fair-share charging model of a shared
    deployment, consistent with :func:`summarize`'s served-only energy
    denominator.  A shed request consumed (almost) no engine energy, so
    a heavily-shed tenant must not be billed for its rejected volume.
    When every request was shed the attribution degenerates to offered
    counts (there is no served work to split by).
    """
    if not records:
        raise ValueError("cannot summarise an empty session")
    by_tenant: Dict[str, list] = {}
    for record in records:
        by_tenant.setdefault(record.request.tenant, []).append(record)
    total = ledger.total()
    total_served = sum(1 for record in records if not record.shed)
    reports: Dict[str, SLOReport] = {}
    for tenant, tenant_records in sorted(by_tenant.items()):
        if total_served:
            share = (
                sum(1 for record in tenant_records if not record.shed)
                / total_served
            )
        else:
            share = len(tenant_records) / len(records)
        tenant_ledger = Ledger(name=f"{label}/{tenant}")
        tenant_ledger.charge(
            "Fair share",
            Cost(
                energy_pj=total.energy_pj * share,
                latency_ns=total.latency_ns * share,
            ),
        )
        reports[tenant] = summarize(
            tenant_records, tenant_ledger, label=f"{label} [{tenant}]"
        )
    return reports
