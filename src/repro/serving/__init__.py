"""Online serving subsystem: traffic -> scheduler -> shards -> SLO report.

The paper evaluates iMARS with an offline, batch-1, whole-dataset
protocol; this package turns the same calibrated cost models into a
*traffic simulator* that answers the production questions the paper
cannot: tail latency under bursty load, shard/replica scaling, cache
admission, multi-tenant contention, and right-sizing.

Pipeline of one simulation (:class:`~repro.serving.session.ServingSession`):

1. a seeded :mod:`~repro.serving.traffic` generator emits timestamped
   requests (Poisson, MMPP bursty, diurnal, or trace replay) -- or a
   :class:`~repro.serving.traffic.MultiTenantTraffic` mixer interleaves
   several tenants' streams (e.g. a MovieLens trace-replay tenant next
   to a bursty Criteo-class tenant), each with its own p95 SLO;
2. the :mod:`~repro.serving.scheduler` micro-batches them under a
   max-batch-size / max-wait admission policy; the
   :class:`~repro.serving.scheduler.AdaptiveMicroBatchScheduler` variant
   retunes both knobs online from the observed p95-vs-SLO gap;
3. each batch is checked against the :mod:`~repro.serving.cache` (an LRU
   result cache whose CMA lookups are charged to the energy ledger,
   optionally guarded by a TinyLFU doorkeeper + count-min-sketch
   admission filter, and warmable before traffic opens) and the misses
   are served by a (possibly :mod:`~repro.serving.shard`-ed) engine
   through the uniform ``serve_batch`` interface of
   :mod:`repro.core.pipeline`; each shard can be a
   :class:`~repro.serving.shard.ReplicaGroup` of R identical engines
   load-balanced by least outstanding work -- partitioning cuts service
   latency, replication cuts queueing;
4. :mod:`~repro.serving.slo` folds the per-request records into
   p50/p95/p99 latency, sustained QPS and energy-per-request, globally
   and per tenant;
5. the :mod:`~repro.serving.autoscaler` closes the loop: it grows
   (shards, replicas) along whichever axis measures better until every
   tenant's p95 contract holds, then reports the cheapest feasible
   deployment by energy per request.
"""

from repro.serving.autoscaler import (
    AutoscaleResult,
    Autoscaler,
    AutoscalerConfig,
    ScaleStep,
)
from repro.serving.cache import CountMinSketch, ServingCache, TinyLFUAdmission
from repro.serving.scheduler import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    Batch,
    MicroBatchConfig,
    MicroBatchScheduler,
)
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import (
    ReplicaGroup,
    ShardedEngine,
    make_sharded_engine,
    partition_corpus,
)
from repro.serving.slo import RequestRecord, SLOReport, summarize, summarize_tenants
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    MultiTenantTraffic,
    PoissonTraffic,
    Request,
    TenantSpec,
    TraceReplayTraffic,
    zipf_user_weights,
)

__all__ = [
    "AdaptiveBatchConfig",
    "AdaptiveMicroBatchScheduler",
    "AutoscaleResult",
    "Autoscaler",
    "AutoscalerConfig",
    "Batch",
    "BurstyTraffic",
    "CountMinSketch",
    "DiurnalTraffic",
    "MicroBatchConfig",
    "MicroBatchScheduler",
    "MultiTenantTraffic",
    "PoissonTraffic",
    "ReplicaGroup",
    "Request",
    "RequestRecord",
    "SLOReport",
    "ScaleStep",
    "ServingCache",
    "ServingResult",
    "ServingSession",
    "ShardedEngine",
    "TenantSpec",
    "TinyLFUAdmission",
    "TraceReplayTraffic",
    "make_sharded_engine",
    "partition_corpus",
    "summarize",
    "summarize_tenants",
    "zipf_user_weights",
]
