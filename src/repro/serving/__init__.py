"""Online serving subsystem: traffic -> scheduler -> shards -> SLO report.

The paper evaluates iMARS with an offline, batch-1, whole-dataset
protocol; this package turns the same calibrated cost models into a
*traffic simulator* that answers the production questions the paper
cannot: tail latency under bursty load, shard-count scaling, and
cache-hit-driven energy savings.

Pipeline of one simulation (:class:`~repro.serving.session.ServingSession`):

1. a seeded :mod:`~repro.serving.traffic` generator emits timestamped
   requests (Poisson, MMPP bursty, diurnal, or trace replay);
2. the :mod:`~repro.serving.scheduler` micro-batches them under a
   max-batch-size / max-wait admission policy;
3. each batch is checked against the :mod:`~repro.serving.cache` (an LRU
   result cache whose CMA lookups are charged to the energy ledger) and
   the misses are served by a (possibly :mod:`~repro.serving.shard`-ed)
   engine through the uniform ``serve_batch`` interface of
   :mod:`repro.core.pipeline`;
4. :mod:`~repro.serving.slo` folds the per-request records into
   p50/p95/p99 latency, sustained QPS and energy-per-request.
"""

from repro.serving.cache import ServingCache
from repro.serving.scheduler import Batch, MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import ShardedEngine, make_sharded_engine, partition_corpus
from repro.serving.slo import RequestRecord, SLOReport, summarize
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    Request,
    TraceReplayTraffic,
    zipf_user_weights,
)

__all__ = [
    "Batch",
    "BurstyTraffic",
    "DiurnalTraffic",
    "MicroBatchConfig",
    "MicroBatchScheduler",
    "PoissonTraffic",
    "Request",
    "RequestRecord",
    "SLOReport",
    "ServingCache",
    "ServingResult",
    "ServingSession",
    "ShardedEngine",
    "TraceReplayTraffic",
    "make_sharded_engine",
    "partition_corpus",
    "summarize",
    "zipf_user_weights",
]
