"""Online serving subsystem: traffic -> scheduler -> shards -> SLO report.

The paper evaluates iMARS with an offline, batch-1, whole-dataset
protocol; this package turns the same calibrated cost models into a
*traffic simulator* that answers the production questions the paper
cannot: tail latency under bursty load, shard/replica scaling, cache
admission, multi-tenant contention, right-sizing, heterogeneous
IMC+GPU fleets, live scale events and overload shedding.

Pipeline of one simulation (:class:`~repro.serving.session.ServingSession`):

1. a seeded :mod:`~repro.serving.traffic` generator emits timestamped
   requests (Poisson, MMPP bursty, diurnal, or trace replay) -- or a
   :class:`~repro.serving.traffic.MultiTenantTraffic` mixer interleaves
   several tenants' streams, each with its own p95 SLO;
2. an optional :mod:`~repro.serving.admission` controller rules on every
   request at dispatch: requests whose projected completion fits the
   tenant's budget are served in full, ones that eat past the degrade
   watermark are answered with a reduced top-k, and ones that would
   overrun the budget are shed at the front door -- with shed/degrade
   volumes reported first-class in the SLO report;
3. the :mod:`~repro.serving.scheduler` micro-batches admitted requests
   under a max-batch-size / max-wait admission policy; the
   :class:`~repro.serving.scheduler.AdaptiveMicroBatchScheduler` variant
   retunes both knobs online from the observed p95-vs-SLO gap;
4. each batch is checked against the :mod:`~repro.serving.cache` (an LRU
   result cache whose CMA lookups are charged to the energy ledger,
   optionally guarded by TinyLFU admission, warmable, and invalidated
   range-wise when re-sharding moves item rows) and the misses are
   served by a (possibly :mod:`~repro.serving.shard`-ed) engine through
   the uniform ``serve_batch`` interface of :mod:`repro.core.pipeline`;
   each shard can be a :class:`~repro.serving.shard.ReplicaGroup` --
   homogeneous (R seed-identical engines, least-outstanding-work
   routing) or *heterogeneous*: IMC primaries plus
   :class:`~repro.core.pipeline.GPUSpilloverEngine` replicas serving
   bit-identical recommendations, with a cost-aware spillover router
   that fills the cheapest engine until its outstanding work threatens
   the p95 target and overflows the rest to the fast-but-hungry backend;
5. :mod:`~repro.serving.slo` folds the per-request records into
   p50/p95/p99 latency, sustained QPS, energy-per-request and
   shed/degrade counts, globally and per tenant;
6. under fault injection (:mod:`~repro.serving.faults`: a seeded
   :class:`~repro.serving.faults.FaultPlan` of replica crashes, shard
   outages, stragglers, transient errors and cache flushes) the
   :mod:`~repro.serving.resilience` layer keeps the fleet answering:
   per-replica timeouts with retry/backoff budgets re-billed to the
   ledger under "Retry", tail hedging under "Hedge", closed/open/
   half-open circuit breakers with failover routing around open ones,
   and partial scatter-gather -- a shard dark past its deadline costs
   recall, not availability.  With an empty plan the wrapped fleet is
   bit-identical to an unwrapped one (recommendations, ledgers,
   telemetry);
7. the :mod:`~repro.serving.autoscaler` closes the loop two ways: the
   replaying :class:`~repro.serving.autoscaler.Autoscaler` searches
   (shards, replicas) -- or, heterogeneously, (shards, replicas,
   spillover_replicas) with energy-aware placement -- against recorded
   traffic for capacity planning, while the live
   :class:`~repro.serving.autoscaler.OnlineScaler` (or a
   :class:`~repro.serving.autoscaler.ScheduledScalePlan`) rescales the
   running session itself -- every online event paying a state-migration
   bill (re-partitioned item rows, replica-slice copies, cache
   invalidation) to the energy ledger instead of restarting the world;
8. :mod:`~repro.serving.forecast` makes the scaling *predictive*: a
   :class:`~repro.serving.forecast.TrafficForecaster` fits a seasonal-
   plus-trend model to the observed arrivals mid-run and the
   :class:`~repro.serving.forecast.PredictiveScaler` emits a
   :class:`~repro.serving.autoscaler.ScheduledScalePlan` ahead of each
   predicted ramp (lead time >= the measured migration latency), with
   :class:`~repro.serving.forecast.DeploymentCapacityModel` choosing the
   cheapest deployment with headroom for each forecast rate.

Every hop of that pipeline is batch-native: the scheduler hands whole
micro-batches to ``serve_batch``, engines run vectorised multi-query
kernels (packed-bit Hamming scans, batched fixed-radius search, one
argpartition top-k, array-level CTR scoring -- see
:mod:`repro.nns.exact`, :mod:`repro.nns.fixed_radius` and
:mod:`repro.lsh.hamming`), and :class:`~repro.serving.shard.ShardedEngine`
merges a batch's shard results in one vectorised pass with a single
cached merge price per entry count.  The kernels are *bit-identical*
to the scalar reference path (``use_vector_kernels=False``) in items,
CTR scores and energy ledgers -- pinned by
``tests/serving/test_vector_equivalence.py`` and a Hypothesis property
across topologies and cache states.
"""

from repro.serving.admission import (
    ACCEPT,
    DEGRADE,
    SHED,
    AdmissionConfig,
    AdmissionController,
)
from repro.serving.autoscaler import (
    AutoscaleResult,
    Autoscaler,
    AutoscalerConfig,
    OnlineScaler,
    OnlineScalerConfig,
    ScaleStep,
    ScheduledScalePlan,
)
from repro.serving.cache import (
    CountMinSketch,
    RepetitionAwareCache,
    ServingCache,
    TinyLFUAdmission,
)
from repro.serving.execution import (
    EXECUTION_MODELS,
    EagerExecutionModel,
    ExecutionOutcome,
    HybridExecutionModel,
    LazyExecutionModel,
    run_execution_model,
)
from repro.serving.forecast import (
    DeploymentCapacity,
    DeploymentCapacityModel,
    ForecastModel,
    PredictiveScaler,
    TrafficForecaster,
    build_scale_plan,
    plan_scale_events,
)
from repro.serving.faults import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    chaos_scenario,
    escalating_scenarios,
)
from repro.serving.pricing import (
    DEFAULT_PRICE_BOOK,
    PriceBook,
    PriceLedger,
    price_serving_run,
)
from repro.serving.resilience import (
    CircuitBreaker,
    FaultContext,
    ResilienceConfig,
    attach_faults,
)
from repro.serving.scheduler import (
    AdaptiveBatchConfig,
    AdaptiveMicroBatchScheduler,
    Batch,
    MicroBatchConfig,
    MicroBatchScheduler,
)
from repro.serving.session import ScaleEvent, ServingResult, ServingSession
from repro.serving.shard import (
    ReplicaGroup,
    ShardedEngine,
    make_sharded_engine,
    migration_cost,
    migration_plan,
    partition_corpus,
    plan_scale_migration,
)
from repro.serving.slo import (
    RequestRecord,
    SLOReport,
    slo_violation_windows,
    summarize,
    summarize_tenants,
)
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    MultiTenantTraffic,
    PoissonTraffic,
    Request,
    TenantSpec,
    TraceReplayTraffic,
    zipf_user_weights,
)
from repro.serving.workload_analyzer import (
    WorkloadFeatures,
    analyze_trace,
    hot_users,
    recommend_execution_model,
    user_request_counts,
)

__all__ = [
    "ACCEPT",
    "DEFAULT_PRICE_BOOK",
    "DEGRADE",
    "EXECUTION_MODELS",
    "SHED",
    "AdaptiveBatchConfig",
    "AdaptiveMicroBatchScheduler",
    "AdmissionConfig",
    "AdmissionController",
    "AutoscaleResult",
    "Autoscaler",
    "AutoscalerConfig",
    "Batch",
    "BurstyTraffic",
    "CircuitBreaker",
    "CountMinSketch",
    "DeploymentCapacity",
    "DeploymentCapacityModel",
    "DiurnalTraffic",
    "EagerExecutionModel",
    "ExecutionOutcome",
    "FaultContext",
    "ForecastModel",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "HybridExecutionModel",
    "LazyExecutionModel",
    "MicroBatchConfig",
    "MicroBatchScheduler",
    "MultiTenantTraffic",
    "OnlineScaler",
    "OnlineScalerConfig",
    "PoissonTraffic",
    "PredictiveScaler",
    "PriceBook",
    "PriceLedger",
    "RepetitionAwareCache",
    "ReplicaGroup",
    "Request",
    "RequestRecord",
    "ResilienceConfig",
    "SLOReport",
    "ScaleEvent",
    "ScaleStep",
    "ScheduledScalePlan",
    "ServingCache",
    "ServingResult",
    "ServingSession",
    "ShardedEngine",
    "TenantSpec",
    "TinyLFUAdmission",
    "TraceReplayTraffic",
    "TrafficForecaster",
    "WorkloadFeatures",
    "analyze_trace",
    "attach_faults",
    "build_scale_plan",
    "chaos_scenario",
    "escalating_scenarios",
    "hot_users",
    "make_sharded_engine",
    "migration_cost",
    "migration_plan",
    "partition_corpus",
    "plan_scale_events",
    "plan_scale_migration",
    "price_serving_run",
    "slo_violation_windows",
    "recommend_execution_model",
    "run_execution_model",
    "summarize",
    "summarize_tenants",
    "user_request_counts",
    "zipf_user_weights",
]
