"""A9 -- scaling study: how the ET operation scales with its drivers.

Table III gives three operating points; this study fills in the curves
between them, confirming the cost model's structure:

* **pooling factor L** (bag size): the worst-case chain serialises
  L - 1 (add + write) pairs, so latency is affine in L with slope
  18.1 ns (8.1 + 10.0 from Table II);
* **active banks** (sparse-feature count): banks work in parallel but the
  RSC gather serialises, so latency is affine in the bank count with the
  bus-beat slope -- the term that separates Criteo from MovieLens;
* **table size**: latency is *flat* in the entry count (lookups are O(1)
  row accesses; capacity, not speed, scales with table size) while active
  CMAs (and hence peripheral energy) grow stepwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.accelerator import IMARSCostModel
from repro.core.calibration import ZERO_PERIPHERAL
from repro.core.mapping import RANKING, EmbeddingTableSpec, WorkloadMapping
from repro.experiments.common import ExperimentReport

__all__ = ["run_scaling_study", "ScalingPoint"]


@dataclass
class ScalingPoint:
    """One swept point of the scaling curves."""

    parameter: str
    value: int
    latency_ns: float
    energy_pj: float


def _single_table_model(num_entries: int, pooling: int) -> IMARSCostModel:
    specs = [
        EmbeddingTableSpec(
            "t", num_entries, stages=frozenset({RANKING}), pooling_factor=pooling
        )
    ]
    return IMARSCostModel(
        WorkloadMapping(specs),
        peripheral=ZERO_PERIPHERAL,
        worst_case_pooling=pooling,
    )


def sweep_pooling(factors: Sequence[int] = (1, 2, 5, 10, 20)) -> List[ScalingPoint]:
    points = []
    for pooling in factors:
        cost = _single_table_model(4000, pooling).et_operation(RANKING)
        points.append(
            ScalingPoint("pooling", pooling, cost.latency_ns, cost.energy_pj)
        )
    return points


def sweep_banks(bank_counts: Sequence[int] = (1, 4, 8, 16, 32)) -> List[ScalingPoint]:
    points = []
    for banks in bank_counts:
        specs = [
            EmbeddingTableSpec(f"t{i}", 4000, stages=frozenset({RANKING}))
            for i in range(banks)
        ]
        model = IMARSCostModel(WorkloadMapping(specs), peripheral=ZERO_PERIPHERAL)
        cost = model.et_operation(RANKING)
        points.append(ScalingPoint("banks", banks, cost.latency_ns, cost.energy_pj))
    return points


def sweep_table_size(
    entry_counts: Sequence[int] = (500, 2000, 8000, 16000, 30000),
) -> List[ScalingPoint]:
    points = []
    for entries in entry_counts:
        cost = _single_table_model(entries, 10).et_operation(RANKING)
        points.append(
            ScalingPoint("entries", entries, cost.latency_ns, cost.energy_pj)
        )
    return points


def run_scaling_study() -> ExperimentReport:
    """Run all three sweeps and assert the model's scaling structure."""
    report = ExperimentReport("A9", "ET-operation scaling study")

    pooling_points = sweep_pooling()
    latencies = np.array([p.latency_ns for p in pooling_points])
    factors = np.array([p.value for p in pooling_points], dtype=np.float64)
    slope = np.polyfit(factors[1:], latencies[1:], 1)[0]  # skip the L=1 read case
    report.add("pooling latency slope (add+write)", 18.1, float(slope), "ns/L")

    bank_points = sweep_banks()
    bank_lat = np.array([p.latency_ns for p in bank_points])
    bank_n = np.array([p.value for p in bank_points], dtype=np.float64)
    bank_slope = np.polyfit(bank_n, bank_lat, 1)[0]
    report.add("bank latency slope (RSC beat)", 0.7, float(bank_slope), "ns/bank")

    size_points = sweep_table_size()
    size_lat = [p.latency_ns for p in size_points]
    report.add(
        "latency flat in table size",
        1,
        int(max(size_lat) - min(size_lat) < 1e-6),
    )
    size_energy = [p.energy_pj for p in size_points]
    report.add(
        "dynamic energy flat in table size (worst-case chain)",
        1,
        int(max(size_energy) - min(size_energy) < 1e-6),
    )
    report.extras["pooling"] = pooling_points
    report.extras["banks"] = bank_points
    report.extras["table_size"] = size_points
    report.note(
        "Latency is affine in the pooled bag size (Table II's add+write "
        "chain) and in the active-bank count (RSC serialisation), and flat "
        "in the table's entry count -- capacity scales, speed does not; "
        "with the fitted peripheral enabled, energy grows with active CMAs "
        "instead."
    )
    return report
