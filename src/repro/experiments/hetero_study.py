"""E-HETERO -- heterogeneous serving: IMC+GPU spillover, live scaling,
admission control.

The paper's core claim is an energy comparison between the in-memory
engine and a GPU at batch 1.  The production question behind it is
sharper: *when is it worth spilling overflow traffic to the GPU, and
what does that cost in energy?*  This experiment answers it in three
acts, all against the same seeded corpus and calibrated cost models:

1. **Fleet frontier.**  The iMARS fabric is fixed custom hardware; the
   marginal engine an operator can actually add is a commodity GPU.  So
   three fleets face identical traffic that overloads a lone IMC
   engine: IMC-only (the single fabric, queueing), GPU-only (the
   paper's baseline serving everything), and a *spillover* fleet (the
   same fabric plus one :class:`~repro.core.pipeline.GPUSpilloverEngine`
   behind a cost-aware router that overflows to the GPU only when the
   primary's queued work threatens the p95 target).  The frontier is
   energy-per-request vs p95: IMC-only is cheapest but queues, GPU-only
   pays two orders of magnitude more energy, spillover sits between --
   near-IMC energy with a contained tail.  Because the spillover GPU
   serves the *deployed* model (same int8 tables, same LSH index), its
   recommendations are bit-identical to the IMC fleet's -- checked
   record-for-record.

2. **Live scale-out.**  A bursty stream hits a minimal (1, 1)
   deployment driven by an :class:`~repro.serving.autoscaler.OnlineScaler`:
   when the windowed p95 overshoots, the session re-shards *mid-run*,
   paying the state migration (re-partitioned item rows, replica-slice
   copies, cache invalidation) to the energy ledger instead of
   restarting the simulation.

3. **Overload shedding.**  A two-tenant mix offered far beyond what the
   *maximum* deployment can serve runs once without admission control
   (every request misses) and once with the SLO-guarded
   :class:`~repro.serving.admission.AdmissionController`: requests
   projected past their tenant's budget are shed at the front door,
   borderline ones are degraded to a reduced top-k, and the survivors'
   tail comes back under control -- with shed/degrade counts reported
   per tenant, because goodput bought by rejection must say so.

Everything is seeded (traffic, engines, caches), so the reported
frontier, scale events and shed counts are deterministic artefacts
guarded by the benchmark regression test.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.autoscaler import OnlineScaler, OnlineScalerConfig
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import (
    BurstyTraffic,
    MultiTenantTraffic,
    PoissonTraffic,
    TenantSpec,
    TraceReplayTraffic,
)

__all__ = ["run_hetero_study", "HETERO_STUDY_DEFAULTS"]

#: Study-scale defaults.  ``load_factor`` multiplies one IMC engine's
#: *batched* capacity so a lone engine queues and the fleet composition
#: matters; ``slo_factor`` sets the p95 contract as a multiple of the
#: IMC batch-1 latency; ``overload_factor`` is the admission scenario's
#: offered load (beyond any deployment in bounds).
HETERO_STUDY_DEFAULTS = {
    "scale": 0.03,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 140,
    "frontier_requests": 300,
    "probe_batch_size": 16,
    "load_factor": 5.0,
    "slo_factor": 6.0,
    "overload_factor": 12.0,
    "tenant_slo_factors": (8.0, 16.0),  # (movielens, bursty-b)
    "max_batch_size": 16,
    # The GPU's batch amortisation only beats the fabric's pipelining on
    # deep backlogs, so the frontier act drains with large rounds.
    "frontier_batch_size": 64,
    "max_wait_fraction": 0.25,  # of the p95 contract
    "cache_fraction": 4,
    "spill_headroom": 0.8,
    "degraded_top_k": 2,
    "scaler_window": 16,
    "scaler_bounds": (2, 2),  # (max_shards, max_replicas) for act 2
}


def _build_models(seed: int, scale: float):
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def _records_identical(left: ServingResult, right: ServingResult) -> bool:
    """Same served items for every request id (the spillover invariant)."""
    if len(left.records) != len(right.records):
        return False
    return all(
        a.request.request_id == b.request.request_id and a.items == b.items
        for a, b in zip(left.records, right.records)
    )


def run_hetero_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    **overrides,
) -> ExperimentReport:
    """Run the heterogeneous-fleet study and fold it into a report.

    ``trace_out`` / ``metrics_out`` enable the telemetry plane and write
    the combined trace (Chrome trace-event JSON, or JSONL for a
    ``.jsonl`` path) and Prometheus textfile covering every session in
    the study.  Tracing is observation-only: the reported frontier,
    scale events and shed counts are bit-identical with it on or off.
    """
    params = dict(HETERO_STUDY_DEFAULTS)
    params.update(overrides)
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-HETERO",
        "Heterogeneous fleet: IMC+GPU spillover, live scaling, admission",
    )
    dataset, filtering, ranking, workload = _build_models(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())
    top_k = params["top_k"]

    def build_fleet(kind: str, shards: int = 1, replicas: int = 1, slo_s=None):
        if kind == "spillover":
            return make_sharded_engine(
                "imars",
                filtering,
                ranking,
                shards,
                mapping=mapping,
                num_candidates=params["num_candidates"],
                top_k=top_k,
                seed=seed,
                replicas_per_shard=replicas,
                spillover_replicas_per_shard=1,
                spillover_slo_s=slo_s,
                spill_headroom=params["spill_headroom"],
            )
        return make_sharded_engine(
            kind,
            filtering,
            ranking,
            shards,
            mapping=mapping if kind == "imars" else None,
            num_candidates=params["num_candidates"],
            top_k=top_k,
            seed=seed,
            replicas_per_shard=replicas,
        )

    # -- calibrate the operating point against one IMC engine ------------
    probe = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        1,
        mapping=mapping,
        num_candidates=params["num_candidates"],
        top_k=top_k,
        seed=seed,
    )
    batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
    probe_batch = probe.serve_batch(
        [workload[user % len(workload)] for user in range(params["probe_batch_size"])]
    )
    capacity_qps = params["probe_batch_size"] / probe_batch.cost.latency_s
    rate_qps = params["load_factor"] * capacity_qps
    slo_s = params["slo_factor"] * batch_one_s
    slo_ms = slo_s * 1e3
    cache_capacity = max(4, dataset.num_users // params["cache_fraction"])
    scheduler_config = MicroBatchConfig(
        max_batch_size=params["max_batch_size"],
        max_wait_s=params["max_wait_fraction"] * slo_s,
    )

    frontier_scheduler_config = MicroBatchConfig(
        max_batch_size=params["frontier_batch_size"],
        max_wait_s=params["max_wait_fraction"] * slo_s,
    )

    def run_fleet(name: str, engine) -> ServingResult:
        session = ServingSession(
            engine,
            workload,
            scheduler=MicroBatchScheduler(frontier_scheduler_config),
            cache=ServingCache(
                capacity=cache_capacity,
                rows_per_entry=top_k,
                admission=TinyLFUAdmission(seed=seed),
            ),
            label=f"hetero {name}",
            telemetry=telemetry,
        )
        return session.run(requests)

    # -- act 1: the fleet frontier ----------------------------------------
    traffic = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=seed, stream=110
    )
    requests = traffic.generate(params["frontier_requests"])
    fleets = {
        "imc-only": build_fleet("imars"),
        "gpu-only": build_fleet("gpu"),
        "spillover": build_fleet("spillover", slo_s=slo_s),
    }
    frontier: Dict[str, ServingResult] = {}
    for name, engine in fleets.items():
        frontier[name] = run_fleet(name, engine)
        report.note(frontier[name].report.format_row().strip())
    spill_stats = frontier["spillover"].spill_stats or {}
    report.note(
        f"spillover routed {spill_stats.get('spilled', 0)} of "
        f"{spill_stats.get('assigned', 0)} engine queries to the GPU "
        f"({100.0 * spill_stats.get('spill_rate', 0.0):.1f}%)."
    )

    report.add(
        "spillover recommendations identical to IMC-only (records)",
        1,
        int(_records_identical(frontier["imc-only"], frontier["spillover"])),
    )
    energy = {
        name: result.report.energy_per_request_uj
        for name, result in frontier.items()
    }
    p95 = {name: result.report.p95_ms for name, result in frontier.items()}
    report.add(
        "energy frontier ordered: IMC <= spillover <= GPU",
        1,
        int(energy["imc-only"] <= energy["spillover"] <= energy["gpu-only"]),
    )
    report.add(
        "spillover cuts the IMC-only p95 tail",
        1,
        int(p95["spillover"] < p95["imc-only"]),
    )
    report.add(
        "spillover actually spilled (router engaged)",
        1,
        int(spill_stats.get("spilled", 0) > 0),
    )

    # -- act 2: live scale-out under burst --------------------------------
    bursty = BurstyTraffic(
        calm_qps=0.8 * rate_qps,
        burst_qps=3.0 * rate_qps,
        num_users=dataset.num_users,
        mean_calm_s=20.0 / rate_qps,
        mean_burst_s=20.0 / rate_qps,
        seed=seed,
        stream=120,
    )
    burst_requests = bursty.generate(params["num_requests"])
    max_shards, max_replicas = params["scaler_bounds"]

    def engine_factory(shards: int, replicas: int):
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            shards,
            mapping=mapping,
            num_candidates=params["num_candidates"],
            top_k=top_k,
            seed=seed,
            replicas_per_shard=replicas,
        )

    def run_burst(label: str, scaler) -> ServingResult:
        session = ServingSession(
            engine_factory(1, 1),
            workload,
            scheduler=MicroBatchScheduler(scheduler_config),
            cache=ServingCache(capacity=cache_capacity, rows_per_entry=top_k),
            label=label,
            engine_factory=engine_factory,
            deployment=(1, 1),
            scaler=scaler,
            telemetry=telemetry,
        )
        return session.run(burst_requests)

    frozen = run_burst("hetero frozen (1,1)", None)
    scaled = run_burst(
        "hetero online-scaled",
        OnlineScaler(
            OnlineScalerConfig(
                p95_target_s=slo_s,
                window=params["scaler_window"],
                cooldown=params["scaler_window"],
                max_shards=max_shards,
                max_replicas=max_replicas,
            )
        ),
    )
    report.note(frozen.report.format_row().strip())
    report.note(scaled.report.format_row().strip())
    for event in scaled.scale_events:
        report.note(
            f"scale event @{event.time_s * 1e3:8.3f}ms "
            f"{event.old_deployment} -> {event.new_deployment} "
            f"({event.moved_rows} rows, {event.invalidated_entries} cache "
            f"entries, {event.cost.energy_uj:.4f} uJ)"
        )
    migration = scaled.ledger.by_category().get("Migration")
    report.add(
        "online scaler rescaled mid-run (events recorded)",
        1,
        int(len(scaled.scale_events) > 0),
    )
    report.add(
        "migration energy charged to the ledger",
        1,
        int(migration is not None and migration.energy_pj > 0.0),
    )
    report.add(
        "online scaling beats the frozen (1,1) p95",
        1,
        int(scaled.report.p95_ms < frozen.report.p95_ms),
    )

    # -- act 3: admission control past the scaling ceiling ----------------
    overload_qps = params["overload_factor"] * capacity_qps
    movielens_factor, bursty_factor = params["tenant_slo_factors"]
    tenant_slos_ms = {
        "movielens": movielens_factor * batch_one_s * 1e3,
        "bursty-b": bursty_factor * batch_one_s * 1e3,
    }
    mix = MultiTenantTraffic(
        [
            TenantSpec(
                name="movielens",
                traffic=TraceReplayTraffic.from_movielens(
                    dataset, 0.6 * overload_qps, seed=seed, stream=130
                ),
                share=0.6,
                p95_slo_ms=tenant_slos_ms["movielens"],
            ),
            TenantSpec(
                name="bursty-b",
                traffic=BurstyTraffic(
                    calm_qps=0.3 * overload_qps,
                    burst_qps=1.5 * overload_qps,
                    num_users=dataset.num_users,
                    mean_calm_s=20.0 / overload_qps,
                    mean_burst_s=20.0 / overload_qps,
                    seed=seed,
                    stream=140,
                ),
                share=0.4,
                p95_slo_ms=tenant_slos_ms["bursty-b"],
            ),
        ]
    )
    mix_requests = mix.generate(params["num_requests"])
    mix_workload = workload + workload  # tenant B replays the same corpus

    def run_mix(label: str, admission) -> ServingResult:
        # No result cache here: the overload act models the worst case
        # (cold, distinct traffic) where the scaling ceiling truly binds.
        session = ServingSession(
            build_fleet("imars", shards=max_shards, replicas=max_replicas),
            mix_workload,
            scheduler=MicroBatchScheduler(scheduler_config),
            cache=None,
            label=label,
            admission=admission,
            telemetry=telemetry,
        )
        return session.run(mix_requests)

    unguarded = run_mix("hetero overload unguarded", None)
    controller = AdmissionController(
        AdmissionConfig(
            slo_ms=slo_ms,
            tenant_slos_ms=tenant_slos_ms,
            degraded_top_k=params["degraded_top_k"],
        )
    )
    guarded = run_mix("hetero overload guarded", controller)
    report.note(unguarded.report.format_row().strip())
    report.note(guarded.report.format_row().strip())
    for tenant, tenant_report in sorted(guarded.tenant_reports.items()):
        report.note(
            f"tenant {tenant}: shed={tenant_report.shed_count} "
            f"degraded={tenant_report.degraded_count} "
            f"p95={tenant_report.p95_ms:.3f}ms "
            f"(budget {tenant_slos_ms[tenant]:.3f}ms)"
        )
    report.add(
        "unguarded overload misses every tenant budget",
        1,
        int(
            all(
                unguarded.tenant_reports[tenant].p95_ms > slo
                for tenant, slo in tenant_slos_ms.items()
            )
        ),
    )
    report.add(
        "admission control sheds and degrades under overload",
        1,
        int(
            guarded.report.shed_count > 0 and guarded.report.degraded_count > 0
        ),
    )
    report.add(
        "shedding reins in the served tail (guarded p95 < unguarded)",
        1,
        int(guarded.report.p95_ms < unguarded.report.p95_ms),
    )

    report.note(
        f"offered load {rate_qps:,.0f} q/s "
        f"({params['load_factor']:.1f}x one IMC engine's "
        f"batch-{params['probe_batch_size']} capacity); p95 contract "
        f"{slo_ms:.3f} ms ({params['slo_factor']:.0f}x batch-1 latency); "
        f"overload act at {overload_qps:,.0f} q/s."
    )
    report.extras["frontier"] = {
        name: result.report for name, result in frontier.items()
    }
    report.extras["spill_stats"] = spill_stats
    report.extras["scale_events"] = scaled.scale_events
    report.extras["frozen_report"] = frozen.report
    report.extras["scaled_report"] = scaled.report
    report.extras["admission_stats"] = guarded.admission_stats
    report.extras["guarded_report"] = guarded.report
    report.extras["unguarded_report"] = unguarded.report
    report.extras["rate_qps"] = rate_qps
    report.extras["slo_ms"] = slo_ms
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
