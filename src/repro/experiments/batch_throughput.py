"""A4 -- batching extension: throughput beyond the paper's batch-1 protocol.

The paper's QPS numbers (Sec. IV-C3) are 1/latency at batch size 1 -- the
latency-oriented serving regime.  A natural question for a downstream user
is how the comparison shifts when the GPU is allowed to batch (amortising
its kernel-launch overhead) while iMARS pipelines queries through its
banks.  This extension models both:

* **GPU batching**: per-stage cost = fixed overhead + batch x marginal
  work, so per-query cost falls towards the marginal term as the batch
  grows;
* **iMARS pipelining**: the fabric's stages (ET banks, crossbars, TCAM)
  operate on different queries concurrently; steady-state throughput is
  bounded by the slowest stage -- the per-candidate ranking loop.

The honest outcome (asserted by the bench): iMARS dominates the
latency-oriented regime by >10x, while large-batch GPU serving closes most
of the throughput gap -- the classic latency/throughput trade-off the
batch-1 protocol does not show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import WorkloadMapping
from repro.data.movielens import movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.experiments.end_to_end import (
    ML_FILTERING_INPUT,
    ML_FILTERING_SPEC,
    ML_RANKING_INPUT,
    ML_RANKING_SPEC,
    NUM_CANDIDATES,
)
from repro.gpu.device import GTX1080, GPUDeviceModel
from repro.nn.mlp import mlp_flops

__all__ = ["run_batch_throughput", "ThroughputPoint", "gpu_batched_query_us"]


@dataclass
class ThroughputPoint:
    """Per-platform throughput at one batch size."""

    batch_size: int
    gpu_qps: float
    imars_qps: float


def gpu_batched_query_us(
    batch: int,
    num_candidates: int = NUM_CANDIDATES,
    device: GPUDeviceModel = GTX1080,
) -> float:
    """Per-query GPU latency when *batch* queries are served together.

    The serving loop keeps the paper's structure -- it iterates over the
    candidate list, paying the per-candidate fixed costs (ET dispatch +
    DNN launches) once per candidate -- but each iteration now covers the
    same-rank candidate of all *batch* queries, so those fixed costs
    amortise while the marginal work (gathered bytes, GEMM flops) scales
    with the batch.  At batch 1 this reduces to the published protocol
    (~1311 q/s).
    """
    if batch < 1:
        raise ValueError("batch size must be >= 1")
    filtering_tables, ranking_tables = 6, 7

    def et_op(tables: int) -> float:
        bytes_per_query = tables * 10 * 32 * 4
        return (
            device.et_base_us
            + device.et_per_table_us * tables
            + batch * device.transfer_time_us(bytes_per_query)
        )

    def dnn_call(input_dim: int, spec: str) -> float:
        layers = len(spec.split("-"))
        flops = mlp_flops(input_dim, spec) * batch
        return layers * device.kernel_launch_us + device.gemm_time_us(flops)

    nns_us = device.nns_cosine_base_us + (
        batch * 3000 * 32 * device.nns_cosine_per_element_us
    )
    filtering = (
        et_op(filtering_tables)
        + dnn_call(ML_FILTERING_INPUT, ML_FILTERING_SPEC)
        + nns_us
    )
    # Per-candidate loop: one ET op + one DNN call per candidate, covering
    # all `batch` queries' candidate at that rank.
    per_candidate = et_op(ranking_tables) + dnn_call(ML_RANKING_INPUT, ML_RANKING_SPEC)
    ranking = num_candidates * per_candidate
    topk = device.kernel_launch_us + batch * device.transfer_time_us(
        num_candidates * 8
    )
    return (filtering + ranking + topk) / batch


def imars_pipelined_qps(
    num_candidates: int = NUM_CANDIDATES,
    mapping: WorkloadMapping = None,
) -> float:
    """Steady-state iMARS throughput with stage-level pipelining.

    Filtering (ET banks + crossbars + TCAM) and ranking work on different
    queries concurrently; the bottleneck stage is the serial per-candidate
    ranking loop, so throughput = 1 / (candidates x per-candidate time).
    """
    mapping = mapping or WorkloadMapping(movielens_table_specs())
    model = IMARSCostModel(mapping)
    filtering = model.filtering_query(
        ML_FILTERING_INPUT, ML_FILTERING_SPEC, num_candidates
    )
    per_candidate = model.ranking_candidate(ML_RANKING_INPUT, ML_RANKING_SPEC)
    ranking_stage_ns = per_candidate.latency_ns * num_candidates
    bottleneck_ns = max(filtering.latency_ns, ranking_stage_ns)
    return 1e9 / bottleneck_ns


def run_batch_throughput(
    batch_sizes: Sequence[int] = (1, 4, 16, 64, 256),
) -> ExperimentReport:
    """Sweep GPU batch size against the pipelined iMARS fabric."""
    report = ExperimentReport("A4", "Batching extension: throughput trade-off")
    imars_qps = imars_pipelined_qps()
    points: List[ThroughputPoint] = []
    for batch in batch_sizes:
        gpu_qps = 1e6 / gpu_batched_query_us(batch)
        points.append(
            ThroughputPoint(batch_size=batch, gpu_qps=gpu_qps, imars_qps=imars_qps)
        )

    first, last = points[0], points[-1]
    # Batch-1 reduces to the published protocol (anchor at ~1311 q/s).
    report.add("GPU batch-1 QPS (paper protocol)", 1311.0, first.gpu_qps)
    report.add(
        "batch-1 iMARS throughput advantage > 10x",
        1,
        int(first.imars_qps / first.gpu_qps > 10.0),
    )
    report.add(
        "GPU throughput grows with batch",
        1,
        int(last.gpu_qps > 5.0 * first.gpu_qps),
    )
    report.add(
        "large-batch GPU closes (or crosses) the gap",
        1,
        int(last.gpu_qps > imars_qps / 3.0),
    )
    report.extras["points"] = points
    report.note(
        f"iMARS pipelined: {imars_qps:,.0f} q/s (ranking-stage bound). "
        f"GPU: {first.gpu_qps:,.0f} q/s at batch 1 -> "
        f"{last.gpu_qps:,.0f} q/s at batch {last.batch_size}. The paper's "
        "batch-1 protocol sits at the left edge of this curve: iMARS's "
        "advantage is a latency-regime result, and large-batch GPU serving "
        "recovers throughput at the cost of per-query latency."
    )
    return report
