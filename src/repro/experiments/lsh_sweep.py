"""A2 -- LSH signature-length ablation.

The paper fixes the signature length at 256 bits (two CMA rows per ItET
entry).  This ablation quantifies the trade-off behind that choice:

* retrieval quality (hit rate of the Hamming search) improves with longer
  signatures, saturating around the chosen 256 bits;
* storage and search cost grow linearly (more signature CMAs to search).

It also validates the SimHash theory: measured per-bit collision rates
track ``1 - theta/pi`` across vector pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.common import ExperimentReport, seeded_rng
from repro.lsh.hyperplane import RandomHyperplaneLSH, expected_collision_probability
from repro.metrics.accuracy import hit_rate
from repro.nns.exact import cosine_topk
from repro.nns.lsh_search import LSHHammingIndex

__all__ = ["run_lsh_sweep", "LSHSweepPoint"]


@dataclass
class LSHSweepPoint:
    """Retrieval quality and cost at one signature length."""

    signature_bits: int
    hamming_hit_rate: float
    cosine_agreement: float  # overlap of LSH top-k with exact-cosine top-k
    signature_cmas_per_1k_items: int


def _synthetic_retrieval_problem(
    num_items: int, dim: int, num_queries: int, seed: int
):
    """Queries near known items: positives are the planted neighbours."""
    rng = seeded_rng(seed)
    items = rng.normal(0.0, 1.0, size=(num_items, dim))
    target_ids = rng.integers(0, num_items, size=num_queries)
    # Heavy perturbation: the planted neighbour is findable by a good
    # metric but short signatures lose it (this is what makes the sweep
    # informative rather than saturated at every length).
    queries = items[target_ids] + rng.normal(0.0, 0.9, size=(num_queries, dim))
    return items, queries, target_ids


def run_lsh_sweep(
    signature_lengths: Sequence[int] = (32, 64, 128, 256, 512),
    num_items: int = 2000,
    dim: int = 32,
    num_queries: int = 200,
    candidates: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """Sweep signature length; check quality saturation + linear cost."""
    report = ExperimentReport("A2", "LSH signature-length ablation")
    items, queries, target_ids = _synthetic_retrieval_problem(
        num_items, dim, num_queries, seed
    )

    points: List[LSHSweepPoint] = []
    exact_sets = [list(cosine_topk(query, items, candidates)[0]) for query in queries]
    for bits in signature_lengths:
        index = LSHHammingIndex(items, signature_bits=bits, seed=seed)
        retrieved = [list(index.search_topk(query, candidates)[0]) for query in queries]
        hr = hit_rate(retrieved, [int(t) for t in target_ids])
        agreement = float(
            np.mean(
                [
                    len(set(lsh_set) & set(exact_set)) / candidates
                    for lsh_set, exact_set in zip(retrieved, exact_sets)
                ]
            )
        )
        cmas = int(np.ceil(1000 / 256)) * int(np.ceil(bits / 256))
        points.append(
            LSHSweepPoint(
                signature_bits=bits,
                hamming_hit_rate=hr,
                cosine_agreement=agreement,
                signature_cmas_per_1k_items=max(1, cmas),
            )
        )

    by_bits: Dict[int, LSHSweepPoint] = {point.signature_bits: point for point in points}
    report.add(
        "HR(256) > HR(32)",
        1,
        int(by_bits[256].hamming_hit_rate > by_bits[32].hamming_hit_rate),
    )
    saturation = by_bits[512].hamming_hit_rate - by_bits[256].hamming_hit_rate
    report.add("HR saturates past 256 bits (gain < 5 pts)", 1, int(saturation < 0.05))
    report.add(
        "cosine agreement at 256 bits > 0.5",
        1,
        int(by_bits[256].cosine_agreement > 0.5),
    )

    # SimHash theory check: measured collision rate vs 1 - theta/pi.
    rng = seeded_rng(seed, 1)
    hasher = RandomHyperplaneLSH(dim, 4096, seed=seed)
    vec_a = rng.normal(0.0, 1.0, size=dim)
    vec_b = vec_a + rng.normal(0.0, 0.5, size=dim)
    cosine = float(
        vec_a @ vec_b / (np.linalg.norm(vec_a) * np.linalg.norm(vec_b))
    )
    sig_a, sig_b = hasher.signatures(np.stack([vec_a, vec_b]))
    measured_agreement = float((sig_a == sig_b).mean())
    report.add(
        "SimHash collision probability",
        expected_collision_probability(cosine),
        measured_agreement,
        "frac",
    )
    report.extras["points"] = points
    report.note(
        "Supports the paper's 256-bit choice: quality saturates near 256 "
        "bits while signature storage/search cost keeps growing linearly."
    )
    return report
