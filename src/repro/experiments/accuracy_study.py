"""E4 -- Sec. IV-B: accuracy of the IMC-friendly algorithm substitutions.

The paper trains the YouTubeDNN filtering model on MovieLens-1M and
measures the hit rate (HR) of the candidate search under three
configurations:

1. FP32 embeddings + cosine distance (the FAISS baseline):   HR 26.8%
2. int8-quantised embeddings + cosine distance:              HR 26.2%
3. int8 embeddings + 256-bit LSH Hamming distance (iMARS):   HR 20.8%

i.e. quantisation costs ~0.6 points while the distance-function swap costs
~5.4 points ("the distance function plays an important role in the
accuracy"), which is tolerable because filtering is a coarse selection.

With the real dataset unavailable, the study runs on the synthetic
latent-factor MovieLens workload: absolute HRs differ, but the reproduction
targets are the *ordering* (FP32-cosine >= int8-cosine > int8-LSH) and the
gap structure (small quantisation gap, larger distance-function gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.data.movielens import MovieLensDataset
from repro.experiments.common import ExperimentReport
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.metrics.accuracy import hit_rate
from repro.models.youtube_dnn import YouTubeDNNConfig, YouTubeDNNFiltering
from repro.nns.exact import cosine_topk
from repro.nns.lsh_search import LSHHammingIndex
from repro.quant.int8 import dequantize, quantize_symmetric

__all__ = ["run_accuracy_study", "AccuracyStudyResult", "PAPER_ACCURACY"]

#: Published Sec. IV-B hit rates.
PAPER_ACCURACY = {
    "fp32_cosine": 0.268,
    "int8_cosine": 0.262,
    "int8_lsh_hamming": 0.208,
}


@dataclass
class AccuracyStudyResult:
    """Hit rates of the three configurations plus the trained model."""

    hit_rates: Dict[str, float]
    num_users: int
    num_items: int
    candidates: int

    @property
    def quantisation_gap(self) -> float:
        return self.hit_rates["fp32_cosine"] - self.hit_rates["int8_cosine"]

    @property
    def distance_gap(self) -> float:
        return self.hit_rates["fp32_cosine"] - self.hit_rates["int8_lsh_hamming"]

    def ordering_holds(self, tolerance: float = 0.01) -> bool:
        """FP32-cosine >= int8-cosine (within tol) > int8-LSH-Hamming."""
        fp32 = self.hit_rates["fp32_cosine"]
        int8 = self.hit_rates["int8_cosine"]
        lsh = self.hit_rates["int8_lsh_hamming"]
        return fp32 >= int8 - tolerance and int8 > lsh


def _evaluate_hit_rates(
    model: YouTubeDNNFiltering,
    dataset: MovieLensDataset,
    candidates: int,
    signature_bits: int,
    seed: int,
    max_users: int,
) -> Dict[str, float]:
    """HR of the three retrieval configurations for the trained model."""
    users = dataset.test_users(limit=max_users)
    histories = [dataset.histories[user] for user in users]
    demographics = dataset.demographics[users]
    positives = dataset.test_positives[users]
    user_vectors = model.user_embedding(histories, demographics)

    fp32_table = model.item_table()
    quantized = quantize_symmetric(fp32_table, per_row=True)
    int8_table = dequantize(quantized)
    hasher = RandomHyperplaneLSH(fp32_table.shape[1], signature_bits, seed=seed)
    lsh_index = LSHHammingIndex(int8_table, hasher=hasher)

    fp32_sets: List[List[int]] = []
    int8_sets: List[List[int]] = []
    lsh_sets: List[List[int]] = []
    for vector in user_vectors:
        fp32_ids, _ = cosine_topk(vector, fp32_table, candidates)
        int8_ids, _ = cosine_topk(vector, int8_table, candidates)
        lsh_ids, _ = lsh_index.search_topk(vector, candidates)
        fp32_sets.append(list(fp32_ids))
        int8_sets.append(list(int8_ids))
        lsh_sets.append(list(lsh_ids))

    return {
        "fp32_cosine": hit_rate(fp32_sets, positives),
        "int8_cosine": hit_rate(int8_sets, positives),
        "int8_lsh_hamming": hit_rate(lsh_sets, positives),
    }


def run_accuracy_study(
    scale: float = 0.2,
    epochs: int = 6,
    candidates_fraction: float = 1.0 / 30.0,
    signature_bits: int = 256,
    seed: int = 0,
    max_users: int = 400,
) -> ExperimentReport:
    """Train the filtering tower and measure HR under the three configs.

    ``scale`` shrinks the synthetic workload for runtime (default 0.1:
    ~604 users, 300 items); ``candidates_fraction`` keeps the retrieval
    set at the paper's items-to-candidates ratio (3000 items -> ~100
    candidates).
    """
    dataset = MovieLensDataset(scale=scale, seed=seed)
    candidates = max(5, int(round(dataset.num_items * candidates_fraction)))
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(
            dataset.num_users,
            3,
            7,
            21,
            450,
        ),
        seed=seed,
    )
    model = YouTubeDNNFiltering(config)
    train_histories, train_targets = dataset.train_examples()
    losses = model.train_retrieval(
        train_histories,
        dataset.demographics,
        train_targets,
        epochs=epochs,
        seed=seed,
    )

    hit_rates = _evaluate_hit_rates(
        model, dataset, candidates, signature_bits, seed, max_users
    )
    result = AccuracyStudyResult(
        hit_rates=hit_rates,
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        candidates=candidates,
    )

    report = ExperimentReport("E4", "Sec. IV-B: accuracy of the IMC substitutions")
    for name, published in PAPER_ACCURACY.items():
        report.add(f"HR {name}", published, hit_rates[name], "frac")
    report.add(
        "quantisation gap (fp32 - int8 cosine)",
        PAPER_ACCURACY["fp32_cosine"] - PAPER_ACCURACY["int8_cosine"],
        result.quantisation_gap,
        "pts",
    )
    report.add(
        "distance gap (fp32 - LSH hamming)",
        PAPER_ACCURACY["fp32_cosine"] - PAPER_ACCURACY["int8_lsh_hamming"],
        result.distance_gap,
        "pts",
    )
    report.note(
        f"Synthetic workload ({result.num_users} users, {result.num_items} "
        f"items, {result.candidates} candidates); absolute HRs are not "
        "comparable to the real MovieLens-1M -- the ordering and gap "
        "structure are the reproduction targets. "
        f"Final training loss {losses[-1]:.3f}."
    )
    report.extras["result"] = result
    report.extras["losses"] = losses
    return report
