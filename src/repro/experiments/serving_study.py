"""E-SERVE -- online serving study: tail latency, sharding, caching.

The paper's Sec. IV-C3 protocol is offline: per-query cost at batch 1,
averaged over a whole dataset.  This extension drives the same calibrated
engines with *live traffic* -- timestamped requests, micro-batching
admission control, an LRU result cache and scatter-gather sharding -- and
reports what a production deployment is judged on:

* p50/p95/p99 end-to-end latency (queueing + batching + service),
* sustained throughput,
* energy per request (engine + cache + merge traffic),

for iMARS vs the GPU baseline, across >= 3 traffic patterns (Poisson,
MMPP bursty, diurnal, MovieLens trace replay) and >= 2 shard counts.

Both engines face the *same offered load*, set to a fixed fraction of the
GPU's batch-1 capacity: at that operating point the GPU queues while the
iMARS fabric is barely utilised -- the latency-regime advantage the
paper's averages cannot show.  The models are untrained (random
embeddings): serving behaviour depends only on cost models, corpus shape
and traffic, not on recommendation accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.cache import ServingCache
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.slo import SLOReport
from repro.serving.traffic import (
    BurstyTraffic,
    DiurnalTraffic,
    PoissonTraffic,
    TraceReplayTraffic,
)

__all__ = ["run_serving_study", "SERVING_STUDY_DEFAULTS"]

#: Study-scale defaults (small corpus: the study measures scheduling and
#: cost-model behaviour, which are corpus-shape invariant).
SERVING_STUDY_DEFAULTS = {
    "scale": 0.04,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 160,
    "shard_counts": (1, 2),
    "max_batch_size": 8,
    "max_wait_s": 0.0005,
    "load_fraction": 0.75,  # offered load as a fraction of GPU capacity
    "cache_fraction": 3,  # cache capacity = num_users // cache_fraction
}


def _build_workload(seed: int, scale: float):
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def _traffic_patterns(rate_qps: float, dataset, seed: int) -> List[object]:
    """The study's arrival processes, all at comparable mean load."""
    return [
        PoissonTraffic(rate_qps, num_users=dataset.num_users, seed=seed, stream=10),
        BurstyTraffic(
            calm_qps=0.5 * rate_qps,
            burst_qps=2.5 * rate_qps,
            num_users=dataset.num_users,
            mean_calm_s=0.05,
            mean_burst_s=0.02,
            seed=seed,
            stream=20,
        ),
        DiurnalTraffic(
            base_qps=rate_qps,
            num_users=dataset.num_users,
            amplitude=0.8,
            period_s=0.5,
            seed=seed,
            stream=30,
        ),
        TraceReplayTraffic.from_movielens(dataset, rate_qps, seed=seed, stream=40),
    ]


def _cache_hit_identity(engine, workload: Sequence[ServeQuery]) -> bool:
    """Hit path must return exactly what the miss path computed."""
    cache = ServingCache(capacity=8, rows_per_entry=5)
    query = workload[0]
    miss = engine.recommend_query(query)
    cache.insert(query, (tuple(miss.items), tuple(miss.scores)))
    value, _ = cache.lookup(query)
    if value is None:
        return False
    items, scores = value
    return list(items) == list(miss.items) and list(scores) == list(miss.scores)


def _records_hit_identity(result: ServingResult) -> bool:
    """Within a session, every hit served the same items as the first miss."""
    first_by_user: Dict[int, Tuple[int, ...]] = {}
    for record in result.records:
        user = record.request.user
        if user not in first_by_user:
            first_by_user[user] = record.items
        elif record.cache_hit and record.items != first_by_user[user]:
            return False
    return True


def run_serving_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    **overrides,
) -> ExperimentReport:
    """Run the full serving grid and fold it into an experiment report.

    ``trace_out`` / ``metrics_out`` enable the telemetry plane and write
    the combined trace (Chrome trace-event JSON, or JSONL for a
    ``.jsonl`` path) and Prometheus textfile covering every session in
    the grid.  Tracing is observation-only: reported latencies, energy
    and recommendations are bit-identical with it on or off.
    """
    params = dict(SERVING_STUDY_DEFAULTS)
    params.update(overrides)
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-SERVE", "Online serving: tail latency, sharding, caching"
    )
    dataset, filtering, ranking, workload = _build_workload(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())

    engines: Dict[Tuple[str, int], object] = {}
    for kind in ("imars", "gpu"):
        for shards in params["shard_counts"]:
            engines[(kind, shards)] = make_sharded_engine(
                kind,
                filtering,
                ranking,
                shards,
                mapping=mapping if kind == "imars" else None,
                num_candidates=params["num_candidates"],
                top_k=params["top_k"],
                seed=seed,
            )

    # Offered load: a fixed fraction of the GPU's batch-1 capacity, so both
    # platforms face identical traffic at a GPU-stressing operating point.
    min_shards = min(params["shard_counts"])
    gpu_probe = engines[("gpu", min_shards)].recommend_query(workload[0])
    rate_qps = params["load_fraction"] / gpu_probe.cost.latency_s
    patterns = _traffic_patterns(rate_qps, dataset, seed)

    scheduler_config = MicroBatchConfig(
        max_batch_size=params["max_batch_size"], max_wait_s=params["max_wait_s"]
    )
    cache_capacity = max(4, dataset.num_users // params["cache_fraction"])

    grid: Dict[Tuple[str, str, int], SLOReport] = {}
    identity_ok = True
    for pattern in patterns:
        requests = pattern.generate(params["num_requests"])
        for (kind, shards), engine in engines.items():
            label = f"{kind} {pattern.name} shards={shards}"
            session = ServingSession(
                engine,
                workload,
                scheduler=MicroBatchScheduler(scheduler_config),
                cache=ServingCache(
                    capacity=cache_capacity, rows_per_entry=params["top_k"]
                ),
                label=label,
                telemetry=telemetry,
            )
            result = session.run(requests)
            identity_ok = identity_ok and _records_hit_identity(result)
            grid[(kind, pattern.name, shards)] = result.report
            report.note(result.report.format_row().strip())

    # -- invariants the study asserts ------------------------------------
    report.add(
        "cache hit/miss top-k identity",
        1,
        int(
            identity_ok
            and all(
                _cache_hit_identity(engine, workload) for engine in engines.values()
            )
        ),
    )
    pattern_names = [pattern.name for pattern in patterns]
    report.add(
        "iMARS p95 below GPU p95 (all patterns, min shards)",
        1,
        int(
            all(
                grid[("imars", name, min_shards)].p95_ms
                <= grid[("gpu", name, min_shards)].p95_ms
                for name in pattern_names
            )
        ),
    )
    report.add(
        "iMARS energy/request below GPU (all sessions)",
        1,
        int(
            all(
                grid[("imars", name, shards)].energy_per_request_uj
                < grid[("gpu", name, shards)].energy_per_request_uj
                for name in pattern_names
                for shards in params["shard_counts"]
            )
        ),
    )
    max_shards = max(params["shard_counts"])
    if max_shards > min_shards:
        sharded_probe = engines[("imars", max_shards)].recommend_query(workload[0])
        unsharded_probe = engines[("imars", min_shards)].recommend_query(workload[0])
        report.add(
            f"sharding {min_shards}->{max_shards} cuts iMARS query latency",
            1,
            int(sharded_probe.cost.latency_ns < unsharded_probe.cost.latency_ns),
        )

    # Cache ablation: same traffic, cache on vs off (energy saving).
    ablation_requests = patterns[0].generate(params["num_requests"])
    imars_engine = engines[("imars", min_shards)]
    with_cache = ServingSession(
        imars_engine,
        workload,
        scheduler=MicroBatchScheduler(scheduler_config),
        cache=ServingCache(capacity=cache_capacity, rows_per_entry=params["top_k"]),
        label="imars cache-on",
        telemetry=telemetry,
    ).run(ablation_requests)
    without_cache = ServingSession(
        imars_engine,
        workload,
        scheduler=MicroBatchScheduler(scheduler_config),
        cache=None,
        label="imars cache-off",
        telemetry=telemetry,
    ).run(ablation_requests)
    report.add(
        "result cache lowers energy/request",
        1,
        int(
            with_cache.report.energy_per_request_uj
            < without_cache.report.energy_per_request_uj
        ),
    )
    saving = 1.0 - (
        with_cache.report.energy_per_request_uj
        / without_cache.report.energy_per_request_uj
    )
    report.note(
        f"offered load {rate_qps:,.0f} q/s ({params['load_fraction']:.0%} of GPU "
        f"batch-1 capacity); cache capacity {cache_capacity} entries; "
        f"cache hit rate {with_cache.report.cache_hit_rate:.0%} -> "
        f"{saving:.0%} energy/request saving on the Poisson stream."
    )
    report.extras["grid"] = grid
    report.extras["cache_ablation"] = {
        "with": with_cache.report,
        "without": without_cache.report,
    }
    report.extras["rate_qps"] = rate_qps
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
