"""A5 -- area accounting for the provisioned fabric and both workloads.

Puts numbers on the paper's qualitative area statements: the fabric's area
grows proportionally with B, M and C; the intra-bank tree's fan-in trades
area for reduction rounds; the CMA arrays dominate the footprint.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.area import AreaModel, fabric_area, workload_area
from repro.core.config import PAPER_CONFIG
from repro.core.mapping import WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.experiments.common import ExperimentReport

__all__ = ["run_area_study"]


def run_area_study() -> ExperimentReport:
    report = ExperimentReport("A5", "Area accounting (Sec. III-A scaling claims)")

    full = fabric_area(PAPER_CONFIG)
    movielens = workload_area(WorkloadMapping(movielens_table_specs()))
    criteo = workload_area(WorkloadMapping(criteo_table_specs()))

    # Plausibility: tens of mm^2 for a 4096-array 45 nm fabric.
    report.add("fabric area in 10-500 mm^2", 1, int(10.0 < full.total_mm2 < 500.0))
    # CMA arrays dominate the provisioned fabric.
    report.add(
        "CMA arrays dominate footprint",
        1,
        int(full.breakdown()["CMA arrays"] > 0.5),
    )
    # Activated area ordering matches Table I: Criteo >> MovieLens.
    report.add(
        "Criteo active area > 10x MovieLens",
        1,
        int(criteo.cma_mm2 > 10.0 * movielens.cma_mm2),
    )

    # Proportional scaling in B, M, C (the paper's claim, tested two ways).
    double_banks = fabric_area(replace(PAPER_CONFIG, num_banks=64))
    report.add(
        "doubling B doubles CMA area",
        1,
        int(abs(double_banks.cma_mm2 / full.cma_mm2 - 2.0) < 0.01),
    )
    double_c = fabric_area(replace(PAPER_CONFIG, cmas_per_mat=64))
    report.add(
        "doubling C doubles CMA area",
        1,
        int(abs(double_c.cma_mm2 / full.cma_mm2 - 2.0) < 0.01),
    )

    # Fan-in/area trade-off of the intra-bank tree.
    model = AreaModel()
    fan4 = model.adder_tree_area_um2(4)
    fan16 = model.adder_tree_area_um2(16)
    report.add("fan-in-16 tree 5x fan-in-4 area", 5.0, fan16 / fan4)

    report.extras["full"] = full
    report.extras["movielens"] = movielens
    report.extras["criteo"] = criteo
    report.note(
        f"Provisioned fabric: {full.total_mm2:.1f} mm^2 "
        f"({full.breakdown()['CMA arrays'] * 100:.0f}% CMA arrays). "
        f"Activated: MovieLens {movielens.total_mm2:.2f} mm^2, "
        f"Criteo {criteo.total_mm2:.1f} mm^2."
    )
    return report
