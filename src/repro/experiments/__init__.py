"""Experiment drivers: one module per paper table/figure plus ablations.

============  =======================================================
Experiment    Paper artefact
============  =======================================================
E1            Fig. 2 -- GPU operation breakdown
E2            Table I -- memory mapping
E3            Table II -- array-level FoMs
E4            Sec. IV-B -- accuracy study
E5            Table III -- ET operation comparison
E6            Sec. IV-C2 -- NNS comparison
E7            Sec. IV-C3 -- end-to-end comparison
E8            Fig. 3 -- computation-flow trace (structural)
A1            Design-space ablations (fan-ins, bus width)
A2            LSH signature-length ablation
A3            Process-variation robustness (dummy-cell reference)
A4            Batching throughput extension
A5            Area accounting
A6            Crossbar non-ideality ablation (analog CTR accuracy)
A7            Standby power (FeFET non-volatility benefit)
A8            Trace-driven ET access locality
A9            ET-operation scaling study
E-SERVE       Online serving study (traffic, sharding, caching)
E-AUTOSCALE   Closed-loop autoscaler (shards x replicas vs p95 SLO)
E-HETERO      Heterogeneous fleet (IMC+GPU spillover, live scaling,
              admission control)
E-CHAOS       Fault injection: self-healing fleet vs resilience-off
E-COST        Dollar-cost execution models (eager/lazy/hybrid) +
              workload analyzer
E-FORECAST    Forecast-driven predictive autoscaling (reactive vs
              predictive vs oracle) + heterogeneous deployment search
============  =======================================================
"""

from repro.experiments.common import ExperimentReport, PaperComparison, relative_error
from repro.experiments.fig2_breakdown import run_fig2, PAPER_FIG2
from repro.experiments.table1_mapping import run_table1, PAPER_TABLE1
from repro.experiments.table2_array_fom import run_table2, PAPER_TABLE2
from repro.experiments.accuracy_study import run_accuracy_study, PAPER_ACCURACY
from repro.experiments.table3_et_ops import run_table3, measured_table3, PAPER_TABLE3
from repro.experiments.nns_comparison import run_nns_comparison, PAPER_NNS
from repro.experiments.end_to_end import (
    run_end_to_end,
    movielens_end_to_end,
    criteo_end_to_end,
    PAPER_END_TO_END,
    NUM_CANDIDATES,
)
from repro.experiments.flow_trace import run_flow_trace, build_toy_fabric
from repro.experiments.design_space import (
    run_design_space,
    sweep_intra_bank_fan_in,
    sweep_intra_mat_fan_in,
    sweep_rsc_width,
)
from repro.experiments.lsh_sweep import run_lsh_sweep
from repro.experiments.variation_study import run_variation_study
from repro.experiments.batch_throughput import run_batch_throughput
from repro.experiments.area_study import run_area_study
from repro.experiments.analog_accuracy import run_analog_accuracy
from repro.experiments.standby_power import run_standby_power
from repro.experiments.trace_locality import run_trace_locality
from repro.experiments.scaling_study import run_scaling_study
from repro.experiments.serving_study import run_serving_study
from repro.experiments.autoscale_study import run_autoscale_study
from repro.experiments.hetero_study import run_hetero_study
from repro.experiments.chaos_study import run_chaos_study
from repro.experiments.cost_study import run_cost_study
from repro.experiments.forecast_study import run_forecast_study

__all__ = [
    "run_autoscale_study",
    "run_chaos_study",
    "run_cost_study",
    "run_forecast_study",
    "run_hetero_study",
    "run_serving_study",
    "run_scaling_study",
    "run_variation_study",
    "run_batch_throughput",
    "run_area_study",
    "run_analog_accuracy",
    "run_standby_power",
    "run_trace_locality",
    "ExperimentReport",
    "PaperComparison",
    "relative_error",
    "run_fig2",
    "PAPER_FIG2",
    "run_table1",
    "PAPER_TABLE1",
    "run_table2",
    "PAPER_TABLE2",
    "run_accuracy_study",
    "PAPER_ACCURACY",
    "run_table3",
    "measured_table3",
    "PAPER_TABLE3",
    "run_nns_comparison",
    "PAPER_NNS",
    "run_end_to_end",
    "movielens_end_to_end",
    "criteo_end_to_end",
    "PAPER_END_TO_END",
    "NUM_CANDIDATES",
    "run_flow_trace",
    "build_toy_fabric",
    "run_design_space",
    "sweep_intra_bank_fan_in",
    "sweep_intra_mat_fan_in",
    "sweep_rsc_width",
    "run_lsh_sweep",
]
