"""A8 -- trace-driven locality study of the ET access pattern.

The paper evaluates the ET operation under a worst-case placement
assumption ("all lookups for one ET happen in the same array").  This
study replays a realistic Zipfian query stream through the MovieLens
mapping and measures how often that worst case actually holds:

* bank-level load is perfectly balanced by construction (one feature per
  bank, each query touches each active feature once);
* *within* the ItET, Zipf popularity concentrates accesses on the CMA(s)
  holding the hot items -- the hottest CMA serves a disproportionate share
  of lookups, which is exactly why the paper's same-array worst case is
  the right thing to report.
"""

from __future__ import annotations

import numpy as np

from repro.core.mapping import WorkloadMapping
from repro.core.trace_sim import TraceSimulator
from repro.data.movielens import movielens_table_specs
from repro.experiments.common import ExperimentReport

__all__ = ["run_trace_locality"]


def run_trace_locality(
    num_queries: int = 5000,
    pooling: int = 10,
    seed: int = 0,
) -> ExperimentReport:
    """Replay a Zipfian stream and check the locality claims."""
    report = ExperimentReport("A8", "Trace-driven ET access locality")
    mapping = WorkloadMapping(movielens_table_specs())
    simulator = TraceSimulator(mapping)
    stream = simulator.synthesize_stream(
        num_queries,
        itet_name="item",
        pooling=pooling,
        rng=np.random.default_rng(seed),
    )
    trace = simulator.replay(stream)

    # Bank-level balance: every active feature touched once per query.
    report.add("bank load perfectly balanced", 1.0, trace.bank_balance())
    report.add(
        "every bank touched once per query",
        num_queries,
        min(trace.bank_accesses.values()),
    )

    # ItET CMA skew: the hottest CMA takes far more than a uniform share.
    itet_cmas = mapping.itet().embedding_cmas
    uniform_share = 1.0 / itet_cmas
    hot_share = trace.cma_skew("item")
    report.add(
        "hot ItET CMA exceeds 2x uniform share",
        1,
        int(hot_share > 2.0 * uniform_share),
    )
    # Same-CMA pooling collisions: fraction of queries where >= 2 of the
    # pooled lookups land in one CMA (the serialised-chain case).
    config = mapping.config
    collisions = 0
    for query in stream:
        cmas = [entry // config.cma_rows for entry in query["item"]]
        if len(set(cmas)) < len(cmas):
            collisions += 1
    collision_fraction = collisions / num_queries
    report.add(
        "same-CMA pooling collisions common (> 50% of queries)",
        1,
        int(collision_fraction > 0.5),
    )
    report.extras["trace"] = trace
    report.extras["collision_fraction"] = collision_fraction
    report.note(
        f"{num_queries} queries, pooling {pooling}: hottest ItET CMA takes "
        f"{hot_share * 100:.1f}% of accesses (uniform {uniform_share * 100:.1f}%); "
        f"{collision_fraction * 100:.1f}% of queries pool >= 2 rows in one CMA, "
        "supporting the paper's same-array worst-case accounting."
    )
    return report
