"""E8 -- Fig. 3 computation-flow validation on the executable fabric.

Runs a complete scripted query on the bit-level fabric (small synthetic
workload) and checks that:

1. every step label (1a)...(2e) of Sec. III-C appears;
2. first occurrences follow the published order;
3. the fabric's pooled lookups and TCAM search agree with the NumPy
   reference computation (hardware/software equivalence).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.fabric import IMARSFabric
from repro.core.mapping import FILTERING, RANKING, EmbeddingTableSpec, WorkloadMapping
from repro.experiments.common import ExperimentReport

__all__ = ["run_flow_trace", "build_toy_fabric"]


def build_toy_fabric(seed: int = 0):
    """A small loaded fabric: 3 tables + signatures, NumPy references kept."""
    rng = np.random.default_rng(seed)
    config = ArchitectureConfig()
    specs = [
        EmbeddingTableSpec("user_id", 64, stages=frozenset({FILTERING, RANKING})),
        EmbeddingTableSpec("genre", 8, stages=frozenset({RANKING})),
        EmbeddingTableSpec(
            "item", 96, kind="itet", stages=frozenset({FILTERING, RANKING}),
            pooling_factor=4,
        ),
    ]
    mapping = WorkloadMapping(specs, config)
    fabric = IMARSFabric(mapping, config)

    tables: Dict[str, np.ndarray] = {}
    for spec in specs:
        table = rng.integers(-40, 40, size=(spec.num_entries, config.embedding_dim))
        fabric.load_table(spec.name, table)
        tables[spec.name] = table
    signatures = rng.integers(0, 2, size=(96, config.lsh_signature_bits)).astype(np.uint8)
    fabric.load_signatures(signatures)
    return fabric, tables, signatures


def run_flow_trace(seed: int = 0, num_candidates: int = 5, k: int = 3) -> ExperimentReport:
    """Execute a full query and validate trace order + functional results."""
    report = ExperimentReport("E8", "Fig. 3: computation-flow trace")
    fabric, tables, signatures = build_toy_fabric(seed)
    rng = np.random.default_rng(seed + 1)

    # ---- filtering -----------------------------------------------------------
    history = [int(index) for index in rng.integers(0, 96, size=4)]
    pooled, _ = fabric.stage_lookup(
        FILTERING, {"user_id": [7], "item": history}
    )
    expected_pool = tables["item"][history].sum(axis=0)
    pooling_exact = bool(np.array_equal(pooled["item"], expected_pool))

    fabric.mark_dnn(FILTERING, "dense")  # (1b)
    fabric.mark_dnn(FILTERING, "main")  # (1c)

    query_signature = signatures[3]  # search near a stored signature
    threshold = 8
    candidates, _ = fabric.nns_search(query_signature, threshold)
    reference_distances = (signatures != query_signature[None, :]).sum(axis=1)
    expected_candidates = [int(i) for i in np.flatnonzero(reference_distances <= threshold)]
    nns_exact = candidates == expected_candidates[: len(candidates)]

    # ---- ranking --------------------------------------------------------------
    scored: List[int] = []
    for position, item in enumerate(candidates[:num_candidates]):
        fabric.mark_dnn(RANKING, "start")  # (2a)
        fabric.stage_lookup(RANKING, {"item": [item], "genre": [item % 8]})
        fabric.mark_dnn(RANKING, "dense")  # (2c)
        ctr = 0.9 - 0.1 * position  # descending scripted CTRs
        fabric.score_candidate(item, ctr)  # (2d)
        scored.append(item)
    winners, _ = fabric.select_topk(k)  # (2e)

    # ---- validation ------------------------------------------------------------
    trace = fabric.trace
    report.add("all 12 flow steps present", 12, len(trace.first_occurrences()))
    report.add("published step order holds", 1, int(trace.follows_published_order()))
    report.add("in-memory pooling exact", 1, int(pooling_exact))
    report.add("TCAM search matches reference", 1, int(nns_exact))
    report.add("top-k returns best CTRs", 1, int(winners == scored[:k]))
    report.extras["trace"] = trace.steps
    report.extras["first_occurrences"] = trace.first_occurrences()
    report.note(
        "Executed on the bit-level fabric: embeddings in FeFET cell "
        "matrices, pooling via in-memory adds + adder trees, NNS via TCAM "
        "threshold match, top-k via the CTR buffer's threshold sweep."
    )
    return report
