"""E3 -- Table II: array-level figures of merit.

Two reproductions are reported:

1. the pinned FoM registry (:data:`repro.circuits.foms.TABLE_II`) -- the
   values every higher-level experiment consumes;
2. the *derived* adder-tree rows from the structural synthesis estimator at
   the paper's design points (fan-in 32 intra-mat, fan-in 4 intra-bank),
   which must land within a few percent of the published numbers -- this
   validates that the estimator is usable for the design-space sweeps.
"""

from __future__ import annotations

from repro.circuits.foms import TABLE_II, derive_foms
from repro.experiments.common import ExperimentReport

__all__ = ["run_table2", "PAPER_TABLE2"]

#: Published Table II values: operation -> (energy pJ, latency ns).
PAPER_TABLE2 = {
    "CMA write": (49.1, 10.0),
    "CMA read": (3.2, 0.3),
    "CMA addition": (108.0, 8.1),
    "CMA search": (13.8, 0.2),
    "Intra-mat adder tree": (137.0, 14.7),
    "Intra-bank adder tree": (956.0, 44.2),
    "Crossbar MatMul": (13.8, 225.0),
}


def run_table2() -> ExperimentReport:
    """Compare registry + derived FoMs against the published table."""
    report = ExperimentReport("E3", "Table II: array-level FoMs")
    registry = TABLE_II.as_table()
    for operation, (energy, latency) in PAPER_TABLE2.items():
        cost = registry[operation]
        report.add(f"{operation} energy", energy, cost.energy_pj, "pJ")
        report.add(f"{operation} latency", latency, cost.latency_ns, "ns")

    derived = derive_foms()
    report.add(
        "derived intra-mat add energy", 137.0, derived.intra_mat_add.energy_pj, "pJ"
    )
    report.add(
        "derived intra-mat add latency", 14.7, derived.intra_mat_add.latency_ns, "ns"
    )
    report.add(
        "derived intra-bank add energy", 956.0, derived.intra_bank_add.energy_pj, "pJ"
    )
    report.add(
        "derived intra-bank add latency", 44.2, derived.intra_bank_add.latency_ns, "ns"
    )
    report.note(
        "Registry rows are pinned to the published HSPICE/RTL numbers; the "
        "derived rows come from the structural synthesis estimator fitted "
        "at these two design points and are used for fan-in sweeps."
    )
    report.extras["foms"] = TABLE_II
    report.extras["derived"] = derived
    return report
