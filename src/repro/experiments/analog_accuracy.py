"""A6 -- crossbar non-ideality ablation: CTR accuracy under analog noise.

The paper evaluates its crossbars with NeuroSim's FoMs but (like most IMC
papers) reports accuracy assuming faithful analog MVM.  This ablation
closes that gap with the functional crossbar model: the trained ranking
MLP runs through analog tiles with swept conductance variation and ADC
resolution, and the CTR AUC is compared against the digital reference.

Expected shape (asserted by the bench): 8-bit converters with ~2%
conductance variation are accuracy-neutral; aggressive variation (~20%)
or very coarse ADCs (2 bits) cost measurable AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.dnn_stack import CrossbarBank
from repro.experiments.common import ExperimentReport
from repro.imc.crossbar import CrossbarConfig
from repro.metrics.accuracy import auc_score
from repro.nn.losses import BCEWithLogitsLoss
from repro.nn.mlp import build_mlp
from repro.nn.optim import Adam

__all__ = ["run_analog_accuracy", "AnalogPoint"]


@dataclass
class AnalogPoint:
    """AUC at one (conductance sigma, ADC bits) analog operating point."""

    conductance_sigma: float
    adc_bits: int
    auc: float


def _train_ctr_mlp(seed: int, num_samples: int, input_dim: int):
    """A small trained CTR net plus held-out evaluation data."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_samples, input_dim))
    true_weights = rng.normal(size=input_dim) * 0.8
    logits = features @ true_weights
    clicks = (rng.random(num_samples) < 1.0 / (1.0 + np.exp(-logits))).astype(float)

    model = build_mlp(input_dim, "32-1", head="none", rng=rng)
    loss_fn = BCEWithLogitsLoss()
    optimizer = Adam(model.parameters(), lr=0.02)
    cut = int(num_samples * 0.75)
    for _ in range(8):
        order = rng.permutation(cut)
        for start in range(0, cut, 64):
            batch = order[start : start + 64]
            optimizer.zero_grad()
            out = model(features[batch]).reshape(-1)
            loss_fn(out, clicks[batch])
            model.backward(loss_fn.backward().reshape(-1, 1))
            optimizer.step()
    return model, features[cut:], clicks[cut:]


def run_analog_accuracy(
    sigmas: Sequence[float] = (0.0, 0.02, 0.05, 0.10, 0.20),
    adc_bits_options: Sequence[int] = (2, 6, 8),
    num_samples: int = 1600,
    input_dim: int = 24,
    seed: int = 0,
) -> ExperimentReport:
    """Sweep analog non-idealities on a trained CTR MLP."""
    model, test_features, test_clicks = _train_ctr_mlp(seed, num_samples, input_dim)
    digital = CrossbarBank(model)
    digital_scores, _ = digital.forward(test_features)
    digital_auc = auc_score(test_clicks, digital_scores.reshape(-1))

    points: List[AnalogPoint] = []
    for sigma in sigmas:
        for adc_bits in adc_bits_options:
            config = CrossbarConfig(
                rows=256, cols=128, dac_bits=8, adc_bits=adc_bits,
                conductance_sigma=sigma,
            )
            analog = CrossbarBank(
                model, analog=True, analog_config=config,
                rng=np.random.default_rng(seed + 7),
            )
            scores, _ = analog.forward(test_features)
            points.append(
                AnalogPoint(
                    conductance_sigma=sigma,
                    adc_bits=adc_bits,
                    auc=auc_score(test_clicks, scores.reshape(-1)),
                )
            )

    def point(sigma, bits):
        return next(
            p for p in points
            if p.conductance_sigma == sigma and p.adc_bits == bits
        )

    report = ExperimentReport("A6", "Crossbar non-ideality ablation (CTR AUC)")
    nominal = point(0.02, 8)
    report.add("digital AUC learnable (> 0.8)", 1, int(digital_auc > 0.8))
    report.add(
        "nominal analog point accuracy-neutral (< 1 pt AUC loss)",
        1,
        int(digital_auc - nominal.auc < 0.01),
    )
    harsh_sigma = point(max(sigmas), 8)
    report.add(
        "20% conductance variation costs AUC",
        1,
        int(digital_auc - harsh_sigma.auc > 0.005),
    )
    coarse_adc = point(0.0, min(adc_bits_options))
    report.add(
        "2-bit ADC costs AUC",
        1,
        int(digital_auc - coarse_adc.auc > 0.005),
    )
    report.extras["digital_auc"] = digital_auc
    report.extras["points"] = points
    report.note(
        f"Digital AUC {digital_auc:.4f}; nominal analog (sigma=2%, 8-bit ADC) "
        f"{nominal.auc:.4f}; harsh variation (20%) {harsh_sigma.auc:.4f}; "
        f"2-bit ADC {coarse_adc.auc:.4f}."
    )
    return report
