"""Shared experiment infrastructure: paper targets and comparison records.

Every experiment module returns a structured result carrying the paper's
published value next to the reproduced one, so the benchmark harness (and
EXPERIMENTS.md) can report paper-vs-measured for every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["PaperComparison", "ExperimentReport", "relative_error", "seeded_rng"]


def seeded_rng(seed: int, stream: int = 0) -> np.random.Generator:
    """The repository-wide seeded RNG: one master ``seed``, many streams.

    Every stochastic component (experiment sweeps, serving traffic
    generators, noise models) derives its generator from a single
    user-facing ``--seed`` plus a small integer ``stream`` id, so a whole
    run is reproducible from one number while independent components do
    not share (or perturb) each other's random state.
    """
    if stream < 0:
        raise ValueError(f"stream id must be non-negative, got {stream}")
    # Seed with the (seed, stream) *pair*: SeedSequence hashes both words,
    # so (0, 2) and (1, 1) produce unrelated generators (a plain
    # ``seed + stream`` sum would collide).
    return np.random.default_rng([seed, stream])


def relative_error(measured: float, published: float) -> float:
    """Signed relative deviation of measured from published."""
    if published == 0.0:
        raise ValueError("published value must be non-zero")
    return (measured - published) / published


@dataclass
class PaperComparison:
    """One scalar reproduced against the paper."""

    name: str
    published: float
    measured: float
    unit: str = ""

    @property
    def error(self) -> float:
        return relative_error(self.measured, self.published)

    def within(self, tolerance: float) -> bool:
        """True when |relative error| <= tolerance."""
        return abs(self.error) <= tolerance

    def format_row(self) -> str:
        return (
            f"  {self.name:<42s} paper={self.published:>12.4g} "
            f"measured={self.measured:>12.4g} {self.unit:<6s} "
            f"({self.error * 100.0:+6.1f}%)"
        )


@dataclass
class ExperimentReport:
    """A named collection of paper comparisons plus free-form notes."""

    experiment_id: str
    title: str
    comparisons: List[PaperComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def add(
        self, name: str, published: float, measured: float, unit: str = ""
    ) -> PaperComparison:
        comparison = PaperComparison(name, published, measured, unit)
        self.comparisons.append(comparison)
        return comparison

    def note(self, text: str) -> None:
        self.notes.append(text)

    def worst_error(self) -> Optional[float]:
        if not self.comparisons:
            return None
        return max(abs(comparison.error) for comparison in self.comparisons)

    def all_within(self, tolerance: float) -> bool:
        return all(comparison.within(tolerance) for comparison in self.comparisons)

    def format(self) -> str:
        lines = [f"[{self.experiment_id}] {self.title}"]
        lines.extend(comparison.format_row() for comparison in self.comparisons)
        lines.extend(f"  note: {text}" for text in self.notes)
        return "\n".join(lines)
