"""A1 -- design-space ablations for the choices Sec. III-A calls out.

The paper motivates three design parameters qualitatively; this experiment
quantifies them with the synthesis estimator and the cost model:

* **intra-bank adder-tree fan-in** ("a design choice made as a compromise
  between area footprint ... and performance"): sweep fan-in 2..16 on the
  Criteo workload, reporting ET-operation latency and the tree's area
  proxy;
* **C, the intra-mat fan-in** ("a large C implies a large fan-in ... which
  leads to parasitic effects that increases the delay"): sweep C with the
  derived intra-mat tree;
* **RSC bus width** ("extremely wide buses may be impractical"): sweep the
  serialisation width and report the gather latency across the Criteo
  banks' outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuits.foms import derive_foms, intra_bank_tree, intra_mat_tree
from repro.core.accelerator import IMARSCostModel
from repro.core.calibration import ZERO_PERIPHERAL
from repro.core.config import ArchitectureConfig
from repro.core.interconnect import RSCBus
from repro.core.mapping import RANKING, WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.experiments.common import ExperimentReport

__all__ = [
    "run_design_space",
    "sweep_intra_bank_fan_in",
    "sweep_intra_mat_fan_in",
    "sweep_rsc_width",
    "DesignPoint",
]


@dataclass
class DesignPoint:
    """One swept configuration and its figures of merit."""

    parameter: str
    value: int
    latency_ns: float
    energy_pj: float
    area_proxy: float


def sweep_intra_bank_fan_in(fan_ins: List[int] = (2, 4, 8, 16)) -> List[DesignPoint]:
    """Criteo ET-operation cost vs intra-bank adder-tree fan-in."""
    points: List[DesignPoint] = []
    mapping_specs = criteo_table_specs()
    for fan_in in fan_ins:
        foms = derive_foms(intra_bank_fan_in=fan_in)
        config = ArchitectureConfig(intra_bank_fan_in=fan_in, foms=foms)
        mapping = WorkloadMapping(mapping_specs, config)
        model = IMARSCostModel(mapping, config, peripheral=ZERO_PERIPHERAL)
        cost = model.et_operation(RANKING)
        tree = intra_bank_tree(fan_in)
        points.append(
            DesignPoint(
                parameter="intra_bank_fan_in",
                value=fan_in,
                latency_ns=cost.latency_ns,
                energy_pj=cost.energy_pj,
                area_proxy=tree.area_fa_equivalents(),
            )
        )
    return points


def sweep_intra_mat_fan_in(fan_ins: List[int] = (8, 16, 32, 64)) -> List[DesignPoint]:
    """Intra-mat adder-tree cost vs C (the CMAs aggregated per mat)."""
    points: List[DesignPoint] = []
    for fan_in in fan_ins:
        tree = intra_mat_tree(fan_in)
        cost = tree.add_cost()
        points.append(
            DesignPoint(
                parameter="intra_mat_fan_in",
                value=fan_in,
                latency_ns=cost.latency_ns,
                energy_pj=cost.energy_pj,
                area_proxy=tree.area_fa_equivalents(),
            )
        )
    return points


def sweep_rsc_width(widths: List[int] = (64, 128, 256, 512)) -> List[DesignPoint]:
    """Criteo 26-bank output gather vs RSC bus width."""
    points: List[DesignPoint] = []
    for width in widths:
        bus = RSCBus(width_bits=width)
        cost = bus.gather(26, 256)
        points.append(
            DesignPoint(
                parameter="rsc_width_bits",
                value=width,
                latency_ns=cost.latency_ns,
                energy_pj=cost.energy_pj,
                area_proxy=float(width),  # wiring area scales with width
            )
        )
    return points


def run_design_space() -> ExperimentReport:
    """Run all three sweeps and assert the qualitative claims."""
    report = ExperimentReport("A1", "Design-space ablations (Sec. III-A choices)")

    bank_points = sweep_intra_bank_fan_in()
    by_fan_in = {point.value: point for point in bank_points}
    # Larger fan-in -> fewer serialised rounds -> faster Criteo ET op.
    report.add(
        "fan-in 16 faster than fan-in 2 (ET op)",
        1,
        int(by_fan_in[16].latency_ns < by_fan_in[2].latency_ns),
    )
    # ... but more area.
    report.add(
        "fan-in 16 larger than fan-in 4 (area)",
        1,
        int(by_fan_in[16].area_proxy > by_fan_in[4].area_proxy),
    )

    mat_points = sweep_intra_mat_fan_in()
    by_c = {point.value: point for point in mat_points}
    # Larger C -> longer span + deeper tree -> slower intra-mat add.
    report.add(
        "C=64 tree slower than C=8 tree",
        1,
        int(by_c[64].latency_ns > by_c[8].latency_ns),
    )

    rsc_points = sweep_rsc_width()
    by_width = {point.value: point for point in rsc_points}
    # Narrow bus serialises more beats.
    report.add(
        "64-bit bus slower than 512-bit bus",
        1,
        int(by_width[64].latency_ns > by_width[512].latency_ns),
    )
    report.extras["intra_bank"] = bank_points
    report.extras["intra_mat"] = mat_points
    report.extras["rsc"] = rsc_points
    report.note(
        "Quantifies the paper's qualitative design rationale: intra-bank "
        "fan-in trades area for serialisation rounds; large C slows the "
        "intra-mat tree via parasitics; narrow buses serialise transfers."
    )
    return report
