"""E7 -- Sec. IV-C3: end-to-end system comparison.

Published results:

* MovieLens (filtering + ranking): iMARS 16.8x faster and 713x more
  energy-efficient than the GPU; 22025 queries/s vs 1311 queries/s.
* Criteo Kaggle (ranking only, DLRM): 13.2x latency and 57.8x energy
  improvement.
* DNN stack alone: crossbars bring ~2.69x latency improvement over GPU.

The experiment composes the per-stage operations (ET op, DNN stacks, NNS,
top-k) into per-query costs on both platforms.  The candidate-set size is
the one free workload parameter (the paper reports O(100) candidates but
not the exact count); 72 candidates makes the GPU pipeline land on the
published 1311 QPS and is used throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.energy.accounting import Cost, Ledger
from repro.experiments.common import ExperimentReport
from repro.gpu.kernels import (
    gpu_dnn_stack,
    gpu_et_operation,
    gpu_nns_cosine,
    gpu_topk,
)
from repro.metrics.throughput import queries_per_second

__all__ = ["run_end_to_end", "PAPER_END_TO_END", "EndToEndResult", "NUM_CANDIDATES"]

#: The candidate-set size used by the end-to-end protocol (see module doc).
NUM_CANDIDATES = 72

#: Published end-to-end numbers.
PAPER_END_TO_END = {
    "movielens_speedup": 16.8,
    "movielens_energy_reduction": 713.0,
    "movielens_gpu_qps": 1311.0,
    "movielens_imars_qps": 22025.0,
    "criteo_speedup": 13.2,
    "criteo_energy_reduction": 57.8,
    "dnn_stack_improvement": 2.69,
}

#: YouTubeDNN geometry (Table I): tower input = pooled history + 5 UIETs.
ML_FILTERING_INPUT = 32 * 6
ML_FILTERING_SPEC = "128-64-32"
#: Ranking net input = user + item + 6 context embeddings.
ML_RANKING_INPUT = 32 * 8
ML_RANKING_SPEC = "128-1"

#: DLRM geometry (Table I).
DLRM_BOTTOM_INPUT = 13
DLRM_BOTTOM_SPEC = "256-128-32"
DLRM_TOP_INPUT = 383  # 351 pairwise dots + 32-d dense vector
DLRM_TOP_SPEC = "256-64-1"


@dataclass
class EndToEndResult:
    """Per-platform per-query costs for one workload."""

    label: str
    gpu: Cost
    imars: Cost
    gpu_ledger: Ledger
    imars_ledger: Ledger

    @property
    def speedup(self) -> float:
        return self.imars.speedup_over(self.gpu)

    @property
    def energy_reduction(self) -> float:
        return self.imars.energy_reduction_over(self.gpu)


def movielens_end_to_end(num_candidates: int = NUM_CANDIDATES) -> EndToEndResult:
    """Full filtering + ranking query on both platforms."""
    mapping = WorkloadMapping(movielens_table_specs())
    model = IMARSCostModel(mapping)
    filtering_tables = len(mapping.tables_for_stage(FILTERING))
    ranking_tables = len(mapping.tables_for_stage(RANKING))
    num_items = mapping.itet().spec.num_entries

    gpu_ledger = Ledger(name="gpu-ml-e2e")
    gpu_ledger.charge("ET Lookup", gpu_et_operation(filtering_tables))
    gpu_ledger.charge("DNN Stack", gpu_dnn_stack(ML_FILTERING_INPUT, ML_FILTERING_SPEC))
    gpu_ledger.charge("NNS", gpu_nns_cosine(num_items, 32))
    per_candidate = gpu_et_operation(ranking_tables).then(
        gpu_dnn_stack(ML_RANKING_INPUT, ML_RANKING_SPEC)
    )
    gpu_ledger.charge("Ranking", per_candidate.repeated(num_candidates))
    gpu_ledger.charge("TopK", gpu_topk(num_candidates))

    imars_ledger = Ledger(name="imars-ml-e2e")
    imars_total = model.end_to_end(
        ML_FILTERING_INPUT,
        ML_FILTERING_SPEC,
        ML_RANKING_INPUT,
        ML_RANKING_SPEC,
        num_candidates=num_candidates,
        ledger=imars_ledger,
    )
    return EndToEndResult(
        label="movielens",
        gpu=gpu_ledger.total(),
        imars=imars_total,
        gpu_ledger=gpu_ledger,
        imars_ledger=imars_ledger,
    )


def criteo_end_to_end() -> EndToEndResult:
    """Single DLRM ranking inference on both platforms."""
    mapping = WorkloadMapping(criteo_table_specs())
    model = IMARSCostModel(mapping)
    ranking_tables = len(mapping.tables_for_stage(RANKING))

    gpu_ledger = Ledger(name="gpu-ck-e2e")
    gpu_ledger.charge("ET Lookup", gpu_et_operation(ranking_tables))
    gpu_ledger.charge("DNN Stack", gpu_dnn_stack(DLRM_BOTTOM_INPUT, DLRM_BOTTOM_SPEC))
    gpu_ledger.charge("Interaction", gpu_topk(27 * 26 // 2))  # pairwise-dot kernel
    gpu_ledger.charge("DNN Stack", gpu_dnn_stack(DLRM_TOP_INPUT, DLRM_TOP_SPEC))

    imars_ledger = Ledger(name="imars-ck-e2e")
    et = model.et_operation(RANKING, ledger=imars_ledger)
    bottom = model.dnn_stack_cost(DLRM_BOTTOM_INPUT, DLRM_BOTTOM_SPEC)
    interaction = Cost(energy_pj=500.0, latency_ns=100.0)  # near-memory dot unit
    top = model.dnn_stack_cost(DLRM_TOP_INPUT, DLRM_TOP_SPEC)
    imars_ledger.charge("DNN Stack", bottom.then(interaction).then(top))
    imars_total = et.then(bottom).then(interaction).then(top)
    return EndToEndResult(
        label="criteo",
        gpu=gpu_ledger.total(),
        imars=imars_total,
        gpu_ledger=gpu_ledger,
        imars_ledger=imars_ledger,
    )


def run_end_to_end(num_candidates: int = NUM_CANDIDATES) -> ExperimentReport:
    """Reproduce every Sec. IV-C3 headline number."""
    report = ExperimentReport("E7", "Sec. IV-C3: end-to-end comparison")

    movielens = movielens_end_to_end(num_candidates)
    report.add(
        "MovieLens speedup",
        PAPER_END_TO_END["movielens_speedup"],
        movielens.speedup,
        "x",
    )
    report.add(
        "MovieLens energy reduction",
        PAPER_END_TO_END["movielens_energy_reduction"],
        movielens.energy_reduction,
        "x",
    )
    report.add(
        "MovieLens GPU QPS",
        PAPER_END_TO_END["movielens_gpu_qps"],
        queries_per_second(movielens.gpu),
        "q/s",
    )
    report.add(
        "MovieLens iMARS QPS",
        PAPER_END_TO_END["movielens_imars_qps"],
        queries_per_second(movielens.imars),
        "q/s",
    )

    criteo = criteo_end_to_end()
    report.add("Criteo speedup", PAPER_END_TO_END["criteo_speedup"], criteo.speedup, "x")
    report.add(
        "Criteo energy reduction",
        PAPER_END_TO_END["criteo_energy_reduction"],
        criteo.energy_reduction,
        "x",
    )

    # DNN-stack-only comparison (the ~2.69x claim).
    mapping = WorkloadMapping(movielens_table_specs())
    model = IMARSCostModel(mapping)
    gpu_dnn = gpu_dnn_stack(ML_FILTERING_INPUT, ML_FILTERING_SPEC)
    imars_dnn = model.dnn_stack_cost(ML_FILTERING_INPUT, ML_FILTERING_SPEC)
    report.add(
        "DNN stack latency improvement",
        PAPER_END_TO_END["dnn_stack_improvement"],
        imars_dnn.speedup_over(gpu_dnn),
        "x",
    )
    report.note(
        f"Candidate-set size fixed at {num_candidates} (the paper reports "
        "O(100) but not the exact count); it is calibrated so the GPU "
        "pipeline reproduces the published 1311 QPS."
    )
    report.extras["movielens"] = movielens
    report.extras["criteo"] = criteo
    return report
