"""E-FORECAST -- reactive vs predictive vs oracle scaling on diurnal load.

The reactive :class:`~repro.serving.autoscaler.OnlineScaler` pays for a
diurnal ramp twice: the windowed p95 must overshoot the contract before
it acts, and the migration stall then lands mid-crest.  This experiment
closes the loop the other way round: a
:class:`~repro.serving.forecast.TrafficForecaster` fits the observed
arrival curve mid-run, and the
:class:`~repro.serving.forecast.PredictiveScaler` emits a
:class:`~repro.serving.autoscaler.ScheduledScalePlan` whose events fire
*lead-time early* -- lead time at least the measured migration latency,
so the stall is paid in the valley.  Three arms serve the same seeded
two-period diurnal trace on the same engines:

* **reactive** -- ``OnlineScaler`` (p95-window control law);
* **predictive** -- ``PredictiveScaler`` (fit mid-run, then timetable);
* **oracle** -- the plan built from the *true* generator parameters
  (:meth:`~repro.serving.traffic.DiurnalTraffic.forecast_model`): what a
  perfect forecast would have scheduled from t=0.

Judged on **SLO-violation windows** (how long the tail hurt, not how
hard -- :func:`~repro.serving.slo.slo_violation_windows`), **migration
dollars** (the PR 9 :class:`~repro.serving.pricing.PriceLedger` bills
"Migration" rows), and **$/energy** per answered request.  A bursty MMPP
trace keeps the story honest: the forecaster reports its own misfit
(``residual_rms_qps``) and its plan stays inside the capacity grid even
when the model is wrong.  A final act extends the offline
:class:`~repro.serving.autoscaler.Autoscaler` to the heterogeneous
``(shards, replicas, spillover_replicas)`` grid: energy-aware placement
keeps the hungry GPUs out whenever the IMC grid suffices, and when
saturating load exhausts the capped IMC axes, the best-effort answer
reaches for GPU spillover to cut the saturated tail.

Pinned invariants (the acceptance contract):

* predictive has **strictly fewer** SLO-violation windows than reactive
  on the diurnal trace;
* predictive's total migration dollars <= oracle's + 25%;
* the forecaster is **observation-only**: recommendations, completions
  and ledgers are bit-identical between "no scaler" and
  "PredictiveScaler(act=False)";
* oracle never violates more windows than predictive (a forecast cannot
  beat the ground truth it estimates);
* the plan's lead time >= the measured migration latency;
* bursty honesty: the fit's relative residual on the bursty trace
  exceeds the diurnal one, and its plan never leaves the capacity grid;
* heterogeneous search: at moderate load energy-aware placement keeps
  the GPU out of the chosen deployment; at saturating load (IMC axes
  capped) both searches exhaust, but the 3-axis best-effort reaches for
  GPU spillover and cuts the saturated tail.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    OnlineScaler,
    OnlineScalerConfig,
)
from repro.serving.forecast import (
    DeploymentCapacity,
    DeploymentCapacityModel,
    PredictiveScaler,
    TrafficForecaster,
    build_scale_plan,
)
from repro.serving.pricing import PriceBook
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.slo import slo_violation_windows
from repro.serving.traffic import BurstyTraffic, DiurnalTraffic, PoissonTraffic

__all__ = ["run_forecast_study", "FORECAST_STUDY_DEFAULTS"]

#: Study-scale defaults.  The physics that matter are *ratios*: base
#: load vs one engine's capacity, crest height vs the next deployment's
#: headroom, lead time vs migration latency -- so the study holds at any
#: corpus scale.
FORECAST_STUDY_DEFAULTS = {
    "scale": 0.03,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 480,
    "probe_batch_size": 16,
    # Base (mean) rate vs one engine's batched capacity; with the
    # amplitude below the crest offers ~1.1x capacity (queueing melts
    # the (1,1) tail) while the valley idles at ~0.12x.
    "load_factor": 0.6,
    "diurnal_amplitude": 0.8,
    # Three days: the fit completes during day one, and the predictive
    # arm amortises that one-time learning cost over every later ramp
    # the reactive controller keeps re-paying.
    "num_periods": 3.0,
    "max_batch_size": 8,
    "max_wait_batch_ones": 2.0,
    "slo_factor": 11.0,  # p95 contract, x batch-1 latency
    "utilization": 0.7,  # capacity headroom target for placement
    "violation_windows": 36,  # judging windows over the whole run
    "forecaster_min_arrivals": 48,
    "forecaster_span_fraction": 0.35,  # fit only once the crest is seen
    "plan_steps_per_period": 24,
    "reactive_window": 24,
    "reactive_cooldown": 24,
    # Scale in below 45% of the target: a realistic cost-conscious
    # controller rides the valley down -- and re-pays the reaction lag
    # at every crest.
    "reactive_relax_watermark": 0.45,
    # Bursty (MMPP) honesty trace.
    "burst_calm_factor": 0.4,
    "burst_spike_factor": 5.0,
    "calm_sojourn_requests": 24.0,
    "burst_sojourn_requests": 12.0,
    # Heterogeneous-search act.  The GPU's batch amortisation only beats
    # the fabric's pipelining on deep backlogs, so the saturation search
    # drains with large rounds (cf. E-HETERO's frontier act); the
    # moderate point shows energy-aware placement keeping the GPU out.
    "hetero_moderate_load_factor": 0.8,
    "hetero_saturating_load_factor": 5.0,
    "hetero_num_requests": 300,
    "hetero_batch_size": 64,
    "hetero_slo_factor": 6.0,
    "hetero_max_steps": 6,
}

#: The candidate grid both the capacity model and the reactive bounds
#: search over (shards, replicas).
_DEPLOYMENT_GRID: Tuple[Tuple[int, int], ...] = ((1, 1), (1, 2), (2, 1), (2, 2))


def _build_models(seed: int, scale: float):
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def _records_identical(left: ServingResult, right: ServingResult) -> bool:
    """Bit-identity over the full record stream + energy total."""
    if len(left.records) != len(right.records):
        return False
    for a, b in zip(left.records, right.records):
        if (
            a.items != b.items
            or a.completion_s != b.completion_s
            or a.cache_hit != b.cache_hit
            or a.request.request_id != b.request.request_id
        ):
            return False
    return left.ledger.total().energy_pj == right.ledger.total().energy_pj


def run_forecast_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    price_book: Optional[PriceBook] = None,
    **overrides,
) -> ExperimentReport:
    """Run the forecast study and fold it into a report.

    ``trace_out`` / ``metrics_out`` export the telemetry plane --
    forecast fits land as ``forecast-fit`` instants and
    ``repro_forecast_*`` series next to the scale events they schedule.
    """
    params = dict(FORECAST_STUDY_DEFAULTS)
    params.update(overrides)
    book = price_book or PriceBook()
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-FORECAST",
        "Forecast-driven predictive autoscaling: reactive vs predictive vs oracle",
    )
    dataset, filtering, ranking, workload = _build_models(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())
    top_k = params["top_k"]

    def factory(shards: int, replicas: int):
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            shards,
            mapping=mapping,
            num_candidates=params["num_candidates"],
            top_k=top_k,
            seed=seed,
            replicas_per_shard=replicas,
        )

    # -- calibrate: capacity + energy per candidate deployment ------------
    probe_queries = [
        workload[user % len(workload)]
        for user in range(params["probe_batch_size"])
    ]
    batch_one_s = factory(1, 1).recommend_query(workload[0]).cost.latency_s
    capacities: List[DeploymentCapacity] = []
    for shards, replicas in _DEPLOYMENT_GRID:
        probe_batch = factory(shards, replicas).serve_batch(probe_queries)
        capacities.append(
            DeploymentCapacity(
                (shards, replicas),
                capacity_qps=params["probe_batch_size"]
                / probe_batch.cost.latency_s,
                energy_per_request_uj=probe_batch.cost.energy_pj
                / params["probe_batch_size"]
                / 1e6,
            )
        )
    capacity_one = capacities[0].capacity_qps
    capacity_model = DeploymentCapacityModel(
        capacities, utilization=params["utilization"]
    )
    slo_s = params["slo_factor"] * batch_one_s
    scheduler_config = MicroBatchConfig(
        max_batch_size=params["max_batch_size"],
        max_wait_s=params["max_wait_batch_ones"] * batch_one_s,
    )

    def build_session(label: str, scaler=None) -> ServingSession:
        return ServingSession(
            factory(1, 1),
            workload,
            scheduler=MicroBatchScheduler(scheduler_config),
            label=label,
            engine_factory=factory,
            deployment=(1, 1),
            scaler=scaler,
            telemetry=telemetry,
            price_book=book,
        )

    # -- measure the migration latency the lead time must cover ----------
    scratch = build_session("forecast migration probe")
    worst_migration = scratch.scale_to(2, 2)
    migration_latency_s = worst_migration.cost.latency_s
    lead_time_s = 2.0 * migration_latency_s + 2.0 * batch_one_s

    # -- the traces -------------------------------------------------------
    base_qps = params["load_factor"] * capacity_one
    expected_duration_s = params["num_requests"] / base_qps
    period_s = expected_duration_s / params["num_periods"]
    window_s = expected_duration_s / params["violation_windows"]
    plan_step_s = period_s / params["plan_steps_per_period"]
    diurnal_traffic = DiurnalTraffic(
        base_qps=base_qps,
        num_users=dataset.num_users,
        amplitude=params["diurnal_amplitude"],
        period_s=period_s,
        seed=seed,
        stream=180,
    )
    diurnal = diurnal_traffic.generate(params["num_requests"])
    bursty = BurstyTraffic(
        calm_qps=params["burst_calm_factor"] * base_qps,
        burst_qps=params["burst_spike_factor"] * base_qps,
        num_users=dataset.num_users,
        mean_calm_s=params["calm_sojourn_requests"] / base_qps,
        mean_burst_s=params["burst_sojourn_requests"] / base_qps,
        seed=seed,
        stream=191,
    ).generate(params["num_requests"])

    def make_predictive(act: bool = True) -> PredictiveScaler:
        return PredictiveScaler(
            TrafficForecaster(
                period_s=period_s,
                min_arrivals=params["forecaster_min_arrivals"],
                min_span_fraction=params["forecaster_span_fraction"],
            ),
            capacity_model,
            lead_time_s=lead_time_s,
            horizon_s=expected_duration_s,
            step_s=plan_step_s,
            fit_after_arrivals=params["forecaster_min_arrivals"],
            act=act,
        )

    def make_reactive() -> OnlineScaler:
        return OnlineScaler(
            OnlineScalerConfig(
                p95_target_s=slo_s,
                window=params["reactive_window"],
                cooldown=params["reactive_cooldown"],
                relax_watermark=params["reactive_relax_watermark"],
                max_shards=2,
                max_replicas=2,
            )
        )

    oracle_plan = build_scale_plan(
        diurnal_traffic.forecast_model(),
        capacity_model,
        start_s=0.0,
        horizon_s=expected_duration_s,
        step_s=plan_step_s,
        lead_time_s=lead_time_s,
        initial_deployment=(1, 1),
    )

    # -- serve the diurnal trace under every control law ------------------
    arms: Dict[str, ServingResult] = {}
    scalers = {
        "static": None,
        "shadow": make_predictive(act=False),
        "reactive": make_reactive(),
        "predictive": make_predictive(act=True),
        "oracle": oracle_plan,
    }
    for arm_name, scaler in scalers.items():
        session = build_session(f"forecast diurnal {arm_name}", scaler=scaler)
        arms[arm_name] = session.run(diurnal)

    violations = {
        name: slo_violation_windows(result.records, slo_s, window_s)[0]
        for name, result in arms.items()
    }
    migration_dollars = {
        name: result.price_ledger.by_category().get("Migration", 0.0)
        for name, result in arms.items()
    }
    for name, result in arms.items():
        report.note(
            f"diurnal {name}: viol windows {violations[name]}, "
            f"migration ${migration_dollars[name]:.6f}, "
            f"{result.report.format_row().strip()}"
        )
        for event in result.scale_events:
            report.note(
                f"  scale {event.old_deployment} -> {event.new_deployment} "
                f"@ t={event.time_s:.4f}s"
            )
    predictive_scaler = scalers["predictive"]
    fitted = predictive_scaler.model
    if fitted is not None:
        report.note(
            f"fitted: base {fitted.base_qps:.1f} q/s (true {base_qps:.1f}), "
            f"amplitude {fitted.amplitude:.2f} "
            f"(true {params['diurnal_amplitude']:.2f}), "
            f"residual rms {fitted.residual_rms_qps:.1f} q/s"
        )

    # -- acceptance pins --------------------------------------------------
    report.add(
        "diurnal: predictive violation windows < reactive",
        1,
        int(violations["predictive"] < violations["reactive"]),
    )
    report.add(
        "diurnal: predictive migration $ <= oracle + 25%",
        1,
        int(
            migration_dollars["oracle"] > 0.0
            and migration_dollars["predictive"]
            <= 1.25 * migration_dollars["oracle"]
        ),
    )
    report.add(
        "forecaster observation-only: shadow arm bit-identical to static",
        1,
        int(
            _records_identical(arms["static"], arms["shadow"])
            and arms["shadow"].scale_events == []
            and scalers["shadow"].model is not None
        ),
    )
    report.add(
        "diurnal: oracle violation windows <= predictive",
        1,
        int(violations["oracle"] <= violations["predictive"]),
    )
    report.add(
        "plan lead time >= measured migration latency",
        1,
        int(lead_time_s >= migration_latency_s),
    )
    report.add(
        "predictive fitted mid-run and scheduled ahead of the ramp",
        1,
        int(
            fitted is not None
            and len(predictive_scaler.planned_events) >= 1
            and len(arms["predictive"].scale_events) >= 1
        ),
    )

    # -- bursty honesty ---------------------------------------------------
    def offline_fit(requests):
        forecaster = TrafficForecaster(
            period_s=period_s,
            min_arrivals=params["forecaster_min_arrivals"],
            min_span_fraction=params["forecaster_span_fraction"],
        )
        forecaster.observe_many(request.arrival_s for request in requests)
        return forecaster.fit()

    diurnal_fit = offline_fit(diurnal)
    bursty_fit = offline_fit(bursty)
    relative_residual = {
        "diurnal": diurnal_fit.residual_rms_qps / max(1e-9, diurnal_fit.base_qps),
        "bursty": bursty_fit.residual_rms_qps / max(1e-9, bursty_fit.base_qps),
    }
    report.note(
        f"fit honesty: relative residual diurnal "
        f"{relative_residual['diurnal']:.2f} vs bursty "
        f"{relative_residual['bursty']:.2f}"
    )
    report.add(
        "bursty: fit admits larger relative residual than diurnal",
        1,
        int(relative_residual["bursty"] > relative_residual["diurnal"]),
    )
    bursty_arms: Dict[str, ServingResult] = {}
    bursty_scalers = {
        "reactive": make_reactive(),
        "predictive": make_predictive(act=True),
    }
    for arm_name, scaler in bursty_scalers.items():
        session = build_session(f"forecast bursty {arm_name}", scaler=scaler)
        bursty_arms[arm_name] = session.run(bursty)
        report.note(
            f"bursty {arm_name}: viol windows "
            f"{slo_violation_windows(bursty_arms[arm_name].records, slo_s, window_s)[0]}, "
            f"{bursty_arms[arm_name].report.format_row().strip()}"
        )
    grid = set(_DEPLOYMENT_GRID)
    report.add(
        "bursty: misfit plan still confined to the capacity grid",
        1,
        int(
            all(
                deployment in grid
                for _, deployment in bursty_scalers["predictive"].planned_events
            )
            and all(
                result.report.availability == 1.0
                for result in bursty_arms.values()
            )
        ),
    )

    # -- heterogeneous deployment search ----------------------------------
    # Two operating points, same 3-axis (shards, replicas, spillover)
    # search.  Moderate load: the IMC grid suffices, and energy-aware
    # placement must keep the hungry GPU out of the chosen deployment.
    # Saturating load with the IMC axes pinned at (1, 1): no config in
    # bounds meets the contract, but the heterogeneous best-effort
    # answer reaches for GPU spillover and cuts the saturated tail the
    # homogeneous search is stuck with.
    hetero_slo_s = params["hetero_slo_factor"] * batch_one_s
    hetero_scheduler = MicroBatchConfig(
        max_batch_size=params["hetero_batch_size"],
        max_wait_s=0.25 * hetero_slo_s,
    )

    def make_hetero_evaluate(requests):
        def evaluate(shards: int, replicas: int, spillover: int = 0):
            kwargs = {}
            if spillover:
                kwargs = dict(
                    spillover_replicas_per_shard=spillover,
                    spillover_slo_s=hetero_slo_s,
                )
            engine = make_sharded_engine(
                "imars",
                filtering,
                ranking,
                shards,
                mapping=mapping,
                num_candidates=params["num_candidates"],
                top_k=top_k,
                seed=seed,
                replicas_per_shard=replicas,
                **kwargs,
            )
            session = ServingSession(
                engine,
                workload,
                scheduler=MicroBatchScheduler(hetero_scheduler),
                label=f"forecast hetero s={shards} r={replicas} g={spillover}",
                telemetry=telemetry,
            )
            return session.run(requests)

        return evaluate

    moderate_requests = PoissonTraffic(
        params["hetero_moderate_load_factor"] * capacity_one,
        num_users=dataset.num_users,
        seed=seed,
        stream=205,
    ).generate(params["hetero_num_requests"])
    saturating_requests = PoissonTraffic(
        params["hetero_saturating_load_factor"] * capacity_one,
        num_users=dataset.num_users,
        seed=seed,
        stream=213,
    ).generate(params["hetero_num_requests"])

    moderate = Autoscaler(
        make_hetero_evaluate(moderate_requests),
        AutoscalerConfig(
            p95_slo_ms=hetero_slo_s * 1e3,
            max_shards=2,
            max_replicas=2,
            max_spillover_replicas=2,
            max_steps=params["hetero_max_steps"],
        ),
    ).run()
    saturating_evaluate = make_hetero_evaluate(saturating_requests)
    homogeneous = Autoscaler(
        lambda shards, replicas: saturating_evaluate(shards, replicas, 0),
        AutoscalerConfig(
            p95_slo_ms=hetero_slo_s * 1e3,
            max_shards=1,
            max_replicas=1,
            max_steps=params["hetero_max_steps"],
        ),
    ).run()
    heterogeneous = Autoscaler(
        saturating_evaluate,
        AutoscalerConfig(
            p95_slo_ms=hetero_slo_s * 1e3,
            max_shards=1,
            max_replicas=1,
            max_spillover_replicas=2,
            max_steps=params["hetero_max_steps"],
        ),
    ).run()
    report.note("hetero search, moderate load:")
    for line in moderate.format().splitlines():
        report.note(line.strip())
    report.note("hetero search, saturating load (IMC axes capped at 1x1):")
    for line in heterogeneous.format().splitlines():
        report.note(line.strip())
    report.add(
        "moderate load: energy-aware placement keeps the GPU out",
        1,
        int(moderate.converged and moderate.best.spillover_replicas == 0),
    )
    report.add(
        "saturating load: capped IMC grid exhausts without meeting the SLO",
        1,
        int(not homogeneous.converged and not heterogeneous.converged),
    )
    report.add(
        "saturating load: best-effort reaches for GPU spillover",
        1,
        int(heterogeneous.best.spillover_replicas >= 1),
    )
    report.add(
        "saturating load: spillover cuts the saturated IMC tail",
        1,
        int(heterogeneous.best.report.p95_ms < homogeneous.best.report.p95_ms),
    )

    report.note(
        f"base load {base_qps:,.0f} q/s (crest x{1 + params['diurnal_amplitude']:.1f}) "
        f"over {params['num_periods']:.0f} periods; p95 contract "
        f"{slo_s * 1e3:.3f} ms; lead time {lead_time_s * 1e3:.3f} ms "
        f"(migration measured {migration_latency_s * 1e3:.3f} ms)."
    )
    report.extras["violations"] = violations
    report.extras["migration_dollars"] = migration_dollars
    report.extras["arms"] = arms
    report.extras["fitted_model"] = fitted
    report.extras["oracle_events"] = list(oracle_plan.events)
    report.extras["lead_time_s"] = lead_time_s
    report.extras["migration_latency_s"] = migration_latency_s
    report.extras["hetero"] = {
        "moderate": moderate,
        "homogeneous": homogeneous,
        "heterogeneous": heterogeneous,
    }
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
