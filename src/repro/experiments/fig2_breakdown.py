"""E1 -- Fig. 2: operation breakdown of the two stages on the GPU.

Published fractions (MovieLens, YouTubeDNN, measured with line_profiler):

* filtering: ET lookup 53%, DNN stack 36%, NNS 11%;
* ranking:   ET lookup 23%, DNN stack 65%, top-k 12%.

The profiler model (see :mod:`repro.gpu.profiler`) composes kernel costs
with per-line host dispatch overhead, matching the line_profiler
measurement protocol.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport
from repro.gpu.profiler import GPUStageProfiler

__all__ = ["run_fig2", "PAPER_FIG2"]

#: Published Fig. 2 fractions.
PAPER_FIG2 = {
    "filtering": {"ET Lookup": 0.53, "DNN Stack": 0.36, "NNS": 0.11},
    "ranking": {"ET Lookup": 0.23, "DNN Stack": 0.65, "TopK": 0.12},
}


def run_fig2() -> ExperimentReport:
    """Regenerate both stage breakdowns and compare every fraction."""
    report = ExperimentReport("E1", "Fig. 2: GPU operation breakdown")
    profiler = GPUStageProfiler()
    breakdowns = profiler.breakdowns()
    for stage, published in PAPER_FIG2.items():
        measured = breakdowns[stage]
        for operation, fraction in published.items():
            report.add(
                f"{stage} {operation} share",
                fraction,
                measured.get(operation, 0.0),
                "frac",
            )
    report.note(
        "Shares follow the line_profiler protocol: kernel time plus "
        "per-profiled-line host dispatch overhead (see gpu/profiler.py)."
    )
    report.extras["breakdowns"] = breakdowns
    return report
