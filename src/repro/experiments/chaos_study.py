"""E-CHAOS -- fault injection vs the self-healing serving fleet.

The paper's evaluation assumes immortal hardware: every query the
protocol offers is answered.  A production recommender is not granted
that -- replicas crash, shards go dark, nodes straggle, caches get
wiped.  This experiment runs the same calibrated serving stack through
a seeded :class:`~repro.serving.faults.FaultPlan` ladder
(:func:`~repro.serving.faults.escalating_scenarios`) twice per rung:

* **resilience off** -- faults are injected but nobody recovers: a
  crashed replica's queries are dropped, a response missing a corpus
  slice is rejected.  Availability collapses in proportion to the
  scheduled downtime;
* **resilience on** -- the :mod:`~repro.serving.resilience` layer
  (timeouts + retries with failover, tail hedging, circuit breakers,
  partial scatter-gather) keeps answering: crashes are detected and
  failed over, stragglers are hedged, a dark shard costs *recall*
  (partial answers from the survivors) instead of availability.

Both arms face bit-identical traffic, engines and fault schedules, so
every delta is attributable to the recovery policy.  The headline
numbers per rung: availability, SLO violations, p95 inflation over a
healthy (zero-fault) fleet, recall overlap against the healthy fleet's
recommendations, retry/hedge energy amplification, and the plan's MTTR.

The pinned acceptance rung is ``moderate`` (seeded replica crashes +
one shard outage + stragglers): the resilient fleet must hold
availability >= 99% with p95 <= 2x the healthy fleet's while the
resilience-off fleet visibly drops requests.  A zero-fault control run
(empty plan, resilience attached) must stay *bit-identical* to the
unwrapped healthy fleet -- recommendations, ledger totals and all.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.cache import ServingCache
from repro.serving.faults import FaultPlan, escalating_scenarios
from repro.serving.resilience import ResilienceConfig
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import PoissonTraffic

__all__ = ["run_chaos_study", "CHAOS_STUDY_DEFAULTS"]

#: Study-scale defaults.  The fleet is the smallest topology where every
#: resilience behaviour has room to act (failover needs a peer replica,
#: partial gather needs a surviving shard).  Time-like resilience knobs
#: are expressed as multiples of the measured batch-1 latency so the
#: study is scale-free; the absolute seconds are derived at run time.
CHAOS_STUDY_DEFAULTS = {
    "scale": 0.03,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 240,
    "probe_batch_size": 16,
    "load_factor": 0.6,
    "num_shards": 2,
    "replicas_per_shard": 2,
    "max_batch_size": 8,
    "slo_factor": 6.0,
    "max_wait_fraction": 0.25,  # of the p95 contract
    "cache_fraction": 4,
    # Resilience knobs (see ResilienceConfig): a failure-threshold of 1,
    # a tight timeout, one failover retry (a lane that fails twice goes
    # partial rather than burning more detection time) and early hedges
    # keep the detection tax low enough that the recovered tail stays
    # inside the 2x acceptance envelope.  The moderate load factor
    # leaves headroom to drain the backlog a detection stall builds up.
    "timeout_factor": 1.2,
    "max_retries": 1,
    "breaker_failure_threshold": 1,
    "cooldown_batch_ones": 10.0,  # breaker cooldown, x batch-1 latency
    "backoff_batch_ones": 0.25,  # retry backoff base, x batch-1 latency
    "hedge_factor": 1.5,
    "hedge_delay_factor": 1.05,
    # Acceptance envelope of the pinned ("moderate") rung.
    "min_availability": 0.99,
    "max_p95_inflation": 2.0,
}


def _build_models(seed: int, scale: float):
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def _bit_identical(left: ServingResult, right: ServingResult) -> bool:
    """Same recommendations AND same ledger totals, record for record."""
    if len(left.records) != len(right.records):
        return False
    if not all(
        a.request.request_id == b.request.request_id
        and a.items == b.items
        and a.latency_s == b.latency_s
        for a, b in zip(left.records, right.records)
    ):
        return False
    return left.ledger.by_category() == right.ledger.by_category()


def _recall_vs_healthy(result: ServingResult, healthy: ServingResult) -> float:
    """Mean per-request overlap with the healthy fleet's served items.

    A failed request scores zero (nothing was recommended), a partial
    one scores whatever fraction of the healthy top-k it still covers --
    the user-visible cost of serving degraded answers.
    """
    reference = {
        record.request.request_id: record.items for record in healthy.records
    }
    overlaps = []
    for record in result.records:
        want = reference.get(record.request.request_id)
        if not want:
            continue
        got = set(record.items)
        overlaps.append(sum(1 for item in want if item in got) / len(want))
    return sum(overlaps) / len(overlaps) if overlaps else 0.0


def run_chaos_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    **overrides,
) -> ExperimentReport:
    """Run the chaos study and fold it into a report.

    ``trace_out`` / ``metrics_out`` enable the telemetry plane and
    export the combined trace / Prometheus textfile across every arm --
    fault windows, retries, hedges and breaker transitions land on a
    dedicated ``faults`` track next to the serve spans they perturb.
    """
    params = dict(CHAOS_STUDY_DEFAULTS)
    params.update(overrides)
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-CHAOS",
        "Fault injection: self-healing fleet vs resilience-off",
    )
    dataset, filtering, ranking, workload = _build_models(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())
    top_k = params["top_k"]
    num_shards = params["num_shards"]
    replicas = params["replicas_per_shard"]

    def build_fleet():
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            num_shards,
            mapping=mapping,
            num_candidates=params["num_candidates"],
            top_k=top_k,
            seed=seed,
            replicas_per_shard=replicas,
        )

    # -- calibrate the operating point against one IMC engine ------------
    probe = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        1,
        mapping=mapping,
        num_candidates=params["num_candidates"],
        top_k=top_k,
        seed=seed,
    )
    batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
    probe_batch = probe.serve_batch(
        [workload[user % len(workload)] for user in range(params["probe_batch_size"])]
    )
    capacity_qps = params["probe_batch_size"] / probe_batch.cost.latency_s
    rate_qps = params["load_factor"] * capacity_qps
    slo_s = params["slo_factor"] * batch_one_s
    cache_capacity = max(4, dataset.num_users // params["cache_fraction"])
    scheduler_config = MicroBatchConfig(
        max_batch_size=params["max_batch_size"],
        max_wait_s=params["max_wait_fraction"] * slo_s,
    )
    resilience = ResilienceConfig(
        timeout_factor=params["timeout_factor"],
        default_timeout_s=batch_one_s,
        max_retries=params["max_retries"],
        backoff_base_s=params["backoff_batch_ones"] * batch_one_s,
        breaker_failure_threshold=params["breaker_failure_threshold"],
        breaker_cooldown_s=params["cooldown_batch_ones"] * batch_one_s,
        hedge_factor=params["hedge_factor"],
        hedge_delay_factor=params["hedge_delay_factor"],
    )

    traffic = PoissonTraffic(
        rate_qps, num_users=dataset.num_users, seed=seed, stream=150
    )
    requests = traffic.generate(params["num_requests"])
    duration_s = max(request.arrival_s for request in requests)

    def run_arm(label: str, faults=None, shields=None) -> ServingResult:
        session = ServingSession(
            build_fleet(),
            workload,
            scheduler=MicroBatchScheduler(scheduler_config),
            cache=ServingCache(capacity=cache_capacity, rows_per_entry=top_k),
            label=label,
            telemetry=telemetry,
            faults=faults,
            resilience=shields,
        )
        return session.run(requests)

    # -- control arms: healthy fleet, and the wrapped-but-idle fleet -----
    healthy = run_arm("chaos healthy")
    wrapped = run_arm(
        "chaos wrapped-idle", faults=FaultPlan(()), shields=resilience
    )
    report.note(healthy.report.format_row().strip())
    report.add(
        "empty plan: wrapped fleet bit-identical to unwrapped (records+ledger)",
        1,
        int(_bit_identical(healthy, wrapped)),
    )
    healthy_p95_ms = healthy.report.p95_ms
    healthy_energy_uj = healthy.ledger.total().energy_uj

    # -- the escalation ladder: off vs on per rung ------------------------
    scenarios = escalating_scenarios(duration_s, num_shards, replicas, seed=seed)
    arms: Dict[str, Dict[str, ServingResult]] = {}
    for name, plan in scenarios.items():
        off = run_arm(f"chaos {name} off", faults=plan)
        on = run_arm(f"chaos {name} on", faults=plan, shields=resilience)
        arms[name] = {"off": off, "on": on}
        for arm_name, result in (("off", off), ("on", on)):
            stats = result.fault_stats or {}
            counters = stats.get("counters", {})
            recall = _recall_vs_healthy(result, healthy)
            amplification = (
                result.ledger.total().energy_uj / healthy_energy_uj
            )
            report.note(
                f"{name:<8s} {arm_name:<3s} "
                f"avail={100.0 * result.report.availability:6.2f}% "
                f"p95={result.report.p95_ms:7.3f}ms "
                f"(x{result.report.p95_ms / healthy_p95_ms:4.2f} healthy) "
                f"recall={recall:5.3f} energy=x{amplification:4.2f} "
                f"retries={stats.get('retries_used', 0)} "
                f"hedges={counters.get('hedges', 0)} "
                f"partial={counters.get('partial_queries', 0)}"
            )

    # -- acceptance invariants on the pinned rung -------------------------
    pinned_on = arms["moderate"]["on"]
    pinned_off = arms["moderate"]["off"]
    report.add(
        "pinned rung: resilient availability >= 99%",
        1,
        int(pinned_on.report.availability >= params["min_availability"]),
    )
    report.add(
        "pinned rung: resilient p95 <= 2x healthy p95",
        1,
        int(
            pinned_on.report.p95_ms
            <= params["max_p95_inflation"] * healthy_p95_ms
        ),
    )
    report.add(
        "pinned rung: resilience-off drops requests",
        1,
        int(pinned_off.report.failed_count > 0),
    )
    report.add(
        "every rung: resilience-on availability >= off",
        1,
        int(
            all(
                rung["on"].report.availability
                >= rung["off"].report.availability
                for rung in arms.values()
            )
        ),
    )
    report.add(
        "dark shards cost recall, not availability (partials answered)",
        1,
        int(
            pinned_on.fault_stats["counters"]["partial_queries"] > 0
            and pinned_on.fault_stats["recall_loss"] > 0.0
        ),
    )

    mttr_s = pinned_on.fault_stats["mttr_s"]
    report.note(
        f"offered load {rate_qps:,.0f} q/s over {num_shards} shards x "
        f"{replicas} replicas; healthy p95 {healthy_p95_ms:.3f} ms; "
        f"pinned-rung MTTR {mttr_s * 1e3:.2f} ms "
        f"(breaker cooldown {resilience.breaker_cooldown_s * 1e3:.2f} ms)."
    )
    report.extras["healthy_report"] = healthy.report
    report.extras["scenario_reports"] = {
        name: {arm: result.report for arm, result in rung.items()}
        for name, rung in arms.items()
    }
    report.extras["fault_stats"] = {
        name: {arm: result.fault_stats for arm, result in rung.items()}
        for name, rung in arms.items()
    }
    report.extras["recall_vs_healthy"] = {
        name: {
            arm: _recall_vs_healthy(result, healthy)
            for arm, result in rung.items()
        }
        for name, rung in arms.items()
    }
    report.extras["resilience"] = resilience
    report.extras["rate_qps"] = rate_qps
    report.extras["duration_s"] = duration_s
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
