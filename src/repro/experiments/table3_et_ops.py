"""E5 -- Table III: ET operation comparison between the GPU and iMARS.

For each of the three workload/stage rows the experiment prices the full
embedding-table operation (lookups + pooling + adder trees + communication)
on both platforms and reports latency, energy, speedup and energy
reduction against the published values:

=================  ========  =========  ========  ========  =========  ========
Row                GPU lat   iMARS lat  Speedup   GPU E     iMARS E    E-reduc
=================  ========  =========  ========  ========  =========  ========
MovieLens filter   9.27 us   0.21 us    43.61x    203.97uJ  0.40 uJ    516.05x
MovieLens rank     9.60 us   0.21 us    45.17x    211.26uJ  0.46 uJ    458.12x
Criteo rank        14.97 us  0.24 us    61.83x    329.34uJ  6.88 uJ    47.90x
=================  ========  =========  ========  ========  =========  ========

Calibration split (see DESIGN.md Sec. 5 and core/calibration.py): GPU
latencies are fitted on rows 1 and 3 (row 2 is a held-out validation);
iMARS latencies are *predictive* (composed from Table II); iMARS energies
anchor the two-parameter peripheral model on rows 1 and 3, with row 2 held
out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.energy.accounting import Cost
from repro.experiments.common import ExperimentReport
from repro.gpu.kernels import gpu_et_operation

__all__ = ["run_table3", "PAPER_TABLE3", "Table3Row"]

#: Published Table III: (gpu_lat_us, imars_lat_us, gpu_uj, imars_uj).
PAPER_TABLE3 = {
    "movielens_filtering": (9.27, 0.21, 203.97, 0.40),
    "movielens_ranking": (9.60, 0.21, 211.26, 0.46),
    "criteo_ranking": (14.97, 0.24, 329.34, 6.88),
}


@dataclass
class Table3Row:
    """One reproduced row of Table III."""

    label: str
    gpu: Cost
    imars: Cost

    @property
    def speedup(self) -> float:
        return self.imars.speedup_over(self.gpu)

    @property
    def energy_reduction(self) -> float:
        return self.imars.energy_reduction_over(self.gpu)


def _rows() -> List[Table3Row]:
    movielens = WorkloadMapping(movielens_table_specs())
    criteo = WorkloadMapping(criteo_table_specs())
    ml_model = IMARSCostModel(movielens)
    ck_model = IMARSCostModel(criteo)

    ml_filter_tables = len(movielens.tables_for_stage(FILTERING))
    ml_rank_tables = len(movielens.tables_for_stage(RANKING))
    ck_rank_tables = len(criteo.tables_for_stage(RANKING))

    return [
        Table3Row(
            "movielens_filtering",
            gpu=gpu_et_operation(ml_filter_tables),
            imars=ml_model.et_operation(FILTERING),
        ),
        Table3Row(
            "movielens_ranking",
            gpu=gpu_et_operation(ml_rank_tables),
            imars=ml_model.et_operation(RANKING),
        ),
        Table3Row(
            "criteo_ranking",
            gpu=gpu_et_operation(ck_rank_tables),
            imars=ck_model.et_operation(RANKING),
        ),
    ]


def run_table3() -> ExperimentReport:
    """Reproduce every cell of Table III."""
    report = ExperimentReport("E5", "Table III: ET operation, GPU vs iMARS")
    rows = _rows()
    for row in rows:
        gpu_lat, imars_lat, gpu_uj, imars_uj = PAPER_TABLE3[row.label]
        report.add(f"{row.label} GPU latency", gpu_lat, row.gpu.latency_us, "us")
        report.add(f"{row.label} iMARS latency", imars_lat, row.imars.latency_us, "us")
        report.add(f"{row.label} GPU energy", gpu_uj, row.gpu.energy_uj, "uJ")
        report.add(f"{row.label} iMARS energy", imars_uj, row.imars.energy_uj, "uJ")
        report.add(
            f"{row.label} speedup", gpu_lat / imars_lat, row.speedup, "x"
        )
        report.add(
            f"{row.label} energy reduction", gpu_uj / imars_uj, row.energy_reduction, "x"
        )
    report.note(
        "movielens_ranking is the held-out validation row for both the GPU "
        "latency fit and the iMARS peripheral-energy fit."
    )
    report.extras["rows"] = rows
    return report


def measured_table3() -> Dict[str, Table3Row]:
    """Rows keyed by label (used by the benchmark harness)."""
    return {row.label: row for row in _rows()}
