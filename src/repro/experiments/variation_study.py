"""A3 -- process-variation robustness of the threshold NNS.

Sec. III-A1 motivates the adjustable dummy-cell reference: the threshold
"can be adjusted to compensate for process variations or to change the
sensitivity of the Hamming distance in the NNS operation".  This study
quantifies both halves of that claim:

1. **Degradation**: matchline current variation (modelled as Gaussian noise
   on the analog Hamming distance) perturbs the candidate set; retrieval
   hit rate falls as sigma grows.
2. **Compensation**: widening the threshold by a small guard band recovers
   most of the lost hit rate at the cost of a larger candidate set --
   exactly the compensation knob the dummy cell provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.common import ExperimentReport, seeded_rng
from repro.lsh.hyperplane import RandomHyperplaneLSH
from repro.metrics.accuracy import hit_rate

__all__ = ["run_variation_study", "VariationPoint"]


@dataclass
class VariationPoint:
    """Retrieval quality at one (noise sigma, guard band) setting."""

    noise_sigma: float
    guard_band: int
    hit_rate: float
    mean_candidates: float


def _noisy_radius_search(
    distances: np.ndarray,
    radius: int,
    noise_sigma: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Threshold match on analog distances perturbed by sensing noise."""
    analog = distances.astype(np.float64)
    if noise_sigma > 0.0:
        analog = analog + rng.normal(0.0, noise_sigma, size=analog.shape)
    return np.flatnonzero(analog <= radius)


def run_variation_study(
    noise_sigmas: Sequence[float] = (0.0, 3.0, 6.0, 10.0),
    guard_bands: Sequence[int] = (0, 4, 8),
    num_items: int = 1500,
    dim: int = 32,
    num_queries: int = 300,
    signature_bits: int = 256,
    target_candidates: int = 12,
    seed: int = 0,
) -> ExperimentReport:
    """Sweep sensing noise and threshold guard band; check the claims.

    Queries are heavily perturbed copies of planted targets, so the
    target's signature distance sits near the calibrated radius -- the
    regime where matchline sensing noise actually flips decisions.
    """
    rng = seeded_rng(seed)
    items = rng.normal(0.0, 1.0, size=(num_items, dim))
    target_ids = rng.integers(0, num_items, size=num_queries)
    queries = items[target_ids] + rng.normal(0.0, 1.1, size=(num_queries, dim))

    hasher = RandomHyperplaneLSH(dim, signature_bits, seed=seed)
    item_signatures = hasher.signatures(items)
    query_signatures = hasher.signatures(queries)
    distance_rows = [
        (item_signatures != signature[None, :]).sum(axis=1)
        for signature in query_signatures
    ]
    # Calibrate the base radius for the target candidate count.
    sorted_rows = [np.sort(row) for row in distance_rows]
    base_radius = int(
        np.median([row[min(target_candidates, row.shape[0]) - 1] for row in sorted_rows])
    )

    points: List[VariationPoint] = []
    for sigma in noise_sigmas:
        for guard in guard_bands:
            search_rng = seeded_rng(seed, 1)
            retrieved = []
            counts = []
            for row in distance_rows:
                found = _noisy_radius_search(
                    row, base_radius + guard, sigma, search_rng
                )
                retrieved.append([int(i) for i in found])
                counts.append(len(found))
            points.append(
                VariationPoint(
                    noise_sigma=sigma,
                    guard_band=guard,
                    hit_rate=hit_rate(retrieved, [int(t) for t in target_ids]),
                    mean_candidates=float(np.mean(counts)),
                )
            )

    def point(sigma, guard):
        return next(
            p for p in points if p.noise_sigma == sigma and p.guard_band == guard
        )

    report = ExperimentReport(
        "A3", "Process-variation robustness of the threshold NNS"
    )
    clean = point(0.0, 0)
    noisy = point(max(noise_sigmas), 0)
    compensated = point(max(noise_sigmas), max(guard_bands))
    report.add("noise degrades HR", 1, int(noisy.hit_rate < clean.hit_rate))
    report.add(
        "guard band recovers HR",
        1,
        int(compensated.hit_rate > noisy.hit_rate),
    )
    recovered_fraction = (
        (compensated.hit_rate - noisy.hit_rate) / (clean.hit_rate - noisy.hit_rate)
        if clean.hit_rate > noisy.hit_rate
        else 1.0
    )
    report.add("recovery fraction > 50%", 1, int(recovered_fraction > 0.5))
    report.add(
        "compensation costs candidates",
        1,
        int(compensated.mean_candidates > noisy.mean_candidates),
    )
    report.extras["points"] = points
    report.extras["base_radius"] = base_radius
    report.note(
        f"Base radius {base_radius} bits for ~{target_candidates} candidates; "
        f"sigma={max(noise_sigmas)} drops HR {clean.hit_rate:.3f} -> "
        f"{noisy.hit_rate:.3f}; +{max(guard_bands)}-bit guard band recovers "
        f"to {compensated.hit_rate:.3f} (the dummy-cell adjustment claim)."
    )
    return report
