"""E2 -- Table I: RecSys configurations and memory mapping on iMARS.

Reproduces the activated bank/mat/CMA counts for both workloads:

* MovieLens (YouTubeDNN): 7 banks, 8 mats, 54 CMAs; 5 filtering UIETs
  (all shared), 6 ranking UIETs (5 shared), 1 ItET.
* Criteo Kaggle (DLRM): 26 banks, 104 mats, 2860 CMAs; 26 ranking UIETs,
  no ItET.

Also checks the provisioning arithmetic the paper walks through: a
30,000-entry table needs 118 CMAs, rounded up to 128 -- exactly one bank
(M x C = 4 x 32).
"""

from __future__ import annotations

import math

from repro.core.config import PAPER_CONFIG
from repro.core.mapping import FILTERING, RANKING, WorkloadMapping, next_power_of_two
from repro.data.criteo import criteo_table_specs
from repro.data.movielens import movielens_table_specs
from repro.experiments.common import ExperimentReport

__all__ = ["run_table1", "PAPER_TABLE1"]

#: Published Table I memory-mapping values.
PAPER_TABLE1 = {
    "movielens": {"banks": 7, "mats": 8, "cmas": 54},
    "criteo": {"banks": 26, "mats": 104, "cmas": 2860},
    "movielens_filtering_uiets": 5,
    "movielens_ranking_uiets": 6,
    "movielens_shared_uiets": 5,
    "criteo_uiets": 26,
}


def run_table1() -> ExperimentReport:
    """Build both workload mappings and compare every Table I count."""
    report = ExperimentReport("E2", "Table I: memory mapping on iMARS")
    config = PAPER_CONFIG

    movielens = WorkloadMapping(movielens_table_specs(), config)
    row = movielens.table_one_row()
    report.add("MovieLens banks", PAPER_TABLE1["movielens"]["banks"], row["banks"])
    report.add("MovieLens mats", PAPER_TABLE1["movielens"]["mats"], row["mats"])
    report.add("MovieLens CMAs", PAPER_TABLE1["movielens"]["cmas"], row["cmas"])

    filtering = movielens.stage_summary(FILTERING)
    ranking = movielens.stage_summary(RANKING)
    report.add(
        "MovieLens filtering UIETs",
        PAPER_TABLE1["movielens_filtering_uiets"],
        filtering["uiet_tables"],
    )
    report.add(
        "MovieLens ranking UIETs",
        PAPER_TABLE1["movielens_ranking_uiets"],
        ranking["uiet_tables"],
    )
    report.add(
        "MovieLens shared UIETs",
        PAPER_TABLE1["movielens_shared_uiets"],
        ranking["shared_uiet_tables"],
    )

    criteo = WorkloadMapping(criteo_table_specs(), config)
    row = criteo.table_one_row()
    report.add("Criteo banks", PAPER_TABLE1["criteo"]["banks"], row["banks"])
    report.add("Criteo mats", PAPER_TABLE1["criteo"]["mats"], row["mats"])
    report.add("Criteo CMAs", PAPER_TABLE1["criteo"]["cmas"], row["cmas"])
    report.add(
        "Criteo UIETs",
        PAPER_TABLE1["criteo_uiets"],
        criteo.stage_summary(RANKING)["uiet_tables"],
    )

    # The dimensioning walk-through of Sec. IV: 30k entries -> 118 -> 128 CMAs.
    needed = math.ceil(30000 / config.cma_rows)
    provisioned = next_power_of_two(needed)
    report.add("30k-entry table CMAs (ceil)", 118, needed)
    report.add("30k-entry table CMAs (provisioned)", 128, provisioned)
    report.add("Bank capacity M x C", 128, config.cmas_per_bank)
    report.note(
        "Per-ET MovieLens cardinalities are not listed in the paper; "
        "MovieLens-1M-realistic values were chosen that reproduce the "
        "published aggregate counts exactly (see data/movielens.py)."
    )
    report.extras["movielens_mapping"] = movielens
    report.extras["criteo_mapping"] = criteo
    return report
