"""E-AUTOSCALE -- closed-loop right-sizing of the serving deployment.

The serving study (E-SERVE) measures fixed deployments; this experiment
asks the operational question: *how many shards and replicas does the
iMARS fabric need to honour a p95 latency contract, and what is the
cheapest such deployment?*  For each traffic pattern -- steady Poisson,
flash-crowd bursty, and a multi-tenant mix of a MovieLens trace-replay
tenant with a bursty Criteo-class tenant under per-tenant SLOs -- the
:class:`~repro.serving.autoscaler.Autoscaler` starts from a single
engine, simulates both single-step scale-outs (add a shard vs add a
replica) against the same recorded request stream, follows the axis that
measures better, and stops at the first configuration whose global and
per-tenant p95s all meet their contracts, reporting the minimum-energy
feasible config it saw.

The offered load is calibrated to overload one engine (a fixed multiple
of its *batched* capacity), so the single-engine start always violates
the SLO and the loop must genuinely scale out.  Every stage is seeded --
traffic, engines, cache admission -- so the converged (shards, replicas)
is a deterministic artefact guarded by a regression test.

The deployments under test use the full PR-4 serving stack: replica
groups, the SLO-aware adaptive micro-batch scheduler, and a TinyLFU-
admission cache warmed with the trace's most popular users.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.autoscaler import AutoscaleResult, Autoscaler, AutoscalerConfig
from repro.serving.cache import ServingCache, TinyLFUAdmission
from repro.serving.scheduler import AdaptiveBatchConfig, AdaptiveMicroBatchScheduler
from repro.serving.session import ServingResult, ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import (
    BurstyTraffic,
    MultiTenantTraffic,
    PoissonTraffic,
    Request,
    TenantSpec,
    TraceReplayTraffic,
)

__all__ = ["run_autoscale_study", "AUTOSCALE_STUDY_DEFAULTS"]

#: Study-scale defaults.  ``load_factor`` multiplies the single engine's
#: *batched* capacity, so the (1, 1) start is genuinely overloaded;
#: ``slo_factor`` sets the p95 contract as a multiple of the engine's
#: batch-1 latency (tight enough to need scale-out, loose enough to be
#: reachable inside the search bounds).
AUTOSCALE_STUDY_DEFAULTS = {
    "scale": 0.03,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 120,
    "probe_batch_size": 16,
    "load_factor": 2.5,
    "slo_factor": 6.0,
    "tenant_slo_factors": (6.0, 12.0),  # (movielens, criteo-class)
    "max_shards": 3,
    "max_replicas": 3,
    "max_steps": 4,
    "cache_fraction": 4,  # capacity = num_users // cache_fraction
    "warm_fraction": 8,  # warmed users = num_users // warm_fraction
}


def _build_models(seed: int, scale: float):
    """One tenant's corpus: dataset, untrained models, per-user queries."""
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def _popular_users(requests: Sequence[Request], count: int) -> List[int]:
    """The ``count`` most-requested user ids (warm-up targets)."""
    frequency = Counter(request.user for request in requests)
    return [user for user, _ in frequency.most_common(count)]


def run_autoscale_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    **overrides,
) -> ExperimentReport:
    """Run the closed-loop autoscaler across traffic patterns.

    ``trace_out`` / ``metrics_out`` enable the telemetry plane and write
    the combined trace (Chrome trace-event JSON, or JSONL for a
    ``.jsonl`` path) and Prometheus textfile covering every evaluated
    deployment.  Tracing is observation-only: the converged deployments
    are bit-identical with it on or off.
    """
    params = dict(AUTOSCALE_STUDY_DEFAULTS)
    params.update(overrides)
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-AUTOSCALE", "Closed-loop autoscaler: shards x replicas vs p95 SLO"
    )
    dataset, filtering, ranking, workload = _build_models(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())

    # -- calibrate the operating point against one engine ----------------
    probe_engine = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        1,
        mapping=mapping,
        num_candidates=params["num_candidates"],
        top_k=params["top_k"],
        seed=seed,
    )
    batch_one_s = probe_engine.recommend_query(workload[0]).cost.latency_s
    probe_batch = probe_engine.serve_batch(
        [workload[user % len(workload)] for user in range(params["probe_batch_size"])]
    )
    batched_capacity_qps = params["probe_batch_size"] / probe_batch.cost.latency_s
    rate_qps = params["load_factor"] * batched_capacity_qps
    slo_ms = params["slo_factor"] * batch_one_s * 1e3

    # -- the traffic patterns the deployment is sized against ------------
    tenant_b = _build_models(seed + 1, params["scale"])
    movielens_factor, criteo_factor = params["tenant_slo_factors"]
    tenant_slos_ms = {
        "movielens": movielens_factor * batch_one_s * 1e3,
        "criteo": criteo_factor * batch_one_s * 1e3,
    }
    mixed_traffic = MultiTenantTraffic(
        [
            TenantSpec(
                name="movielens",
                traffic=TraceReplayTraffic.from_movielens(
                    dataset, 0.6 * rate_qps, seed=seed, stream=50
                ),
                share=0.6,
                p95_slo_ms=tenant_slos_ms["movielens"],
            ),
            TenantSpec(
                name="criteo",
                traffic=BurstyTraffic(
                    calm_qps=0.25 * rate_qps,
                    burst_qps=1.2 * rate_qps,
                    num_users=tenant_b[0].num_users,
                    mean_calm_s=0.05,
                    mean_burst_s=0.02,
                    seed=seed,
                    stream=60,
                ),
                share=0.4,
                p95_slo_ms=tenant_slos_ms["criteo"],
            ),
        ]
    )
    patterns: List[Tuple[str, object, Sequence[ServeQuery], Dict[str, float]]] = [
        (
            "poisson",
            PoissonTraffic(rate_qps, num_users=dataset.num_users, seed=seed, stream=70),
            workload,
            {},
        ),
        (
            "bursty",
            # Sojourn means are scaled to the inter-arrival time so the
            # trace actually alternates calm <-> burst several times over
            # its ~num_requests/rate span.
            BurstyTraffic(
                calm_qps=0.8 * rate_qps,
                burst_qps=3.0 * rate_qps,
                num_users=dataset.num_users,
                mean_calm_s=15.0 / rate_qps,
                mean_burst_s=15.0 / rate_qps,
                seed=seed,
                stream=80,
            ),
            workload,
            {},
        ),
        ("multi-tenant", mixed_traffic, workload + tenant_b[3], tenant_slos_ms),
    ]

    # -- one closed loop per pattern -------------------------------------
    outcomes: Dict[str, AutoscaleResult] = {}
    for name, traffic, pattern_workload, tenant_slos in patterns:
        requests = traffic.generate(params["num_requests"])
        warm_users = _popular_users(
            requests, max(1, traffic.num_users // params["warm_fraction"])
        )
        cache_capacity = max(4, traffic.num_users // params["cache_fraction"])

        def evaluate(
            shards: int,
            replicas: int,
            requests=requests,
            pattern_workload=pattern_workload,
            warm_users=warm_users,
            cache_capacity=cache_capacity,
            name=name,
        ) -> ServingResult:
            engine = make_sharded_engine(
                "imars",
                filtering,
                ranking,
                shards,
                mapping=mapping,
                num_candidates=params["num_candidates"],
                top_k=params["top_k"],
                seed=seed,
                replicas_per_shard=replicas,
            )
            scheduler = AdaptiveMicroBatchScheduler(
                AdaptiveBatchConfig(
                    target_p95_s=slo_ms / 1e3,
                    max_batch_size=params["probe_batch_size"],
                    max_wait_s=0.25 * slo_ms / 1e3,
                )
            )
            cache = ServingCache(
                capacity=cache_capacity,
                rows_per_entry=params["top_k"],
                admission=TinyLFUAdmission(seed=seed),
            )
            session = ServingSession(
                engine,
                pattern_workload,
                scheduler=scheduler,
                cache=cache,
                label=f"autoscale {name} s={shards} r={replicas}",
                telemetry=telemetry,
            )
            session.warm(warm_users)
            return session.run(requests)

        loop = Autoscaler(
            evaluate,
            AutoscalerConfig(
                p95_slo_ms=slo_ms,
                tenant_slos_ms=tenant_slos,
                max_shards=params["max_shards"],
                max_replicas=params["max_replicas"],
                max_steps=params["max_steps"],
            ),
        )
        outcome = loop.run()
        outcomes[name] = outcome
        report.note(f"{name}:")
        for line in outcome.format().splitlines():
            report.note(line.strip())

    # -- invariants the study asserts ------------------------------------
    report.add(
        "autoscaler converges on every pattern",
        1,
        int(all(outcome.converged for outcome in outcomes.values())),
    )
    report.add(
        "single engine violates the SLO on every pattern (scale-out earned)",
        1,
        int(not any(outcome.steps[0].meets_slo for outcome in outcomes.values())),
    )
    report.add(
        "chosen config is min-energy among feasible evaluated",
        1,
        int(
            all(
                outcome.best.report.energy_per_request_uj
                <= min(
                    step.report.energy_per_request_uj
                    for step in outcome.steps
                    if step.meets_slo
                )
                for outcome in outcomes.values()
                if outcome.converged
            )
        ),
    )
    mix = outcomes["multi-tenant"]
    report.add(
        "per-tenant p95 contracts hold at the chosen mix deployment",
        1,
        int(
            mix.converged
            and all(
                mix.best.tenant_reports[tenant].p95_ms <= slo
                for tenant, slo in tenant_slos_ms.items()
            )
        ),
    )
    report.note(
        f"offered load {rate_qps:,.0f} q/s "
        f"({params['load_factor']:.1f}x one engine's batch-{params['probe_batch_size']} "
        f"capacity); p95 contract {slo_ms:.3f} ms "
        f"({params['slo_factor']:.0f}x batch-1 latency)."
    )
    report.extras["outcomes"] = outcomes
    report.extras["chosen"] = {
        name: outcome.chosen for name, outcome in outcomes.items()
    }
    report.extras["rate_qps"] = rate_qps
    report.extras["slo_ms"] = slo_ms
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
