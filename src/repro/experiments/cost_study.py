"""E-COST -- dollar-cost execution models vs the workload analyzer.

The paper's evaluation (and PRs 2-8) accounts the fleet in joules; the
operator's invoice is in dollars: engine hours, cache get/put fees,
provisioned storage -- with off-peak compute discounted.  Once the bill
is denominated in dollars, *when* a recommendation is computed becomes
an optimisation knob: this experiment prices the three execution models
of :mod:`repro.serving.execution` against each other on two traffic
shapes --

* a **diurnal** trace (sinusoidal day/night rate, one full period over
  the run): predictable valley, heavy Zipf repetition -- precompute
  country;
* a **bursty** MMPP trace (calm <-> flash-crowd): the same repetition
  but spikes nobody can schedule around.

Per trace, the same engines and the same seeded requests are driven
through **lazy** (compute on demand), **eager** (precompute the traffic
head off-peak, ``Warm-up`` rows billed at the off-peak discount) and
**hybrid** (precompute only users with proven recurrence; a
:class:`~repro.serving.cache.RepetitionAwareCache` refuses to cache
one-off results on the demand path).  The workload analyzer
(:mod:`repro.serving.workload_analyzer`) sees only the trace and must
pick the model blind; the report shows the full $/energy/latency
frontier next to its recommendation.

Pinned invariants:

* hybrid never costs more dollars than the worse of eager/lazy, on
  both traces (the safe-default property of thresholded precompute);
* dollar totals are bit-stable: re-running an arm on the same seed
  reproduces the bill to the last float (dollar rows are priced from
  the PR 6 cost-row templates, which are bit-stable);
* the priced SLO report's dollar column equals the price ledger total
  (one source of truth);
* the analyzer discriminates: eager on the diurnal trace, hybrid on
  the bursty one;
* eager's cache hit rate beats lazy's on the diurnal trace (that is
  what the precompute bought).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mapping import WorkloadMapping
from repro.core.pipeline import ServeQuery
from repro.data.movielens import MovieLensDataset, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.obs import Telemetry
from repro.models.youtube_dnn import (
    YouTubeDNNConfig,
    YouTubeDNNFiltering,
    YouTubeDNNRanking,
)
from repro.serving.cache import RepetitionAwareCache, ServingCache
from repro.serving.execution import (
    EagerExecutionModel,
    ExecutionOutcome,
    HybridExecutionModel,
    LazyExecutionModel,
)
from repro.serving.pricing import PriceBook
from repro.serving.scheduler import MicroBatchConfig, MicroBatchScheduler
from repro.serving.session import ServingSession
from repro.serving.shard import make_sharded_engine
from repro.serving.traffic import BurstyTraffic, DiurnalTraffic
from repro.serving.workload_analyzer import (
    analyze_trace,
    recommend_execution_model,
)

__all__ = ["run_cost_study", "COST_STUDY_DEFAULTS"]

#: Study-scale defaults (small corpus: execution-model economics depend
#: on traffic shape and cost ratios, not corpus size).
COST_STUDY_DEFAULTS = {
    "scale": 0.03,
    "num_candidates": 24,
    "top_k": 5,
    "num_requests": 200,
    "probe_batch_size": 16,
    "load_factor": 0.6,
    "num_shards": 2,
    "max_batch_size": 8,
    "max_wait_batch_ones": 2.0,  # scheduler max wait, x batch-1 latency
    "cache_fraction": 3,  # cache capacity = num_users // cache_fraction
    # Diurnal shape: one full day over the run, deep valley.
    "diurnal_amplitude": 0.8,
    # Bursty shape: calm/burst rates relative to the mean operating
    # point; sojourn lengths in *requests* (converted to seconds at the
    # calibrated rate) so the MMPP actually flips state several times
    # per run at any simulation scale.
    "burst_calm_factor": 0.4,
    "burst_spike_factor": 6.0,
    "calm_sojourn_requests": 24.0,
    "burst_sojourn_requests": 12.0,
    # Execution-model knobs.
    "eager_traffic_fraction": 0.75,
    "recurrence_threshold": 0.5,
    "min_repeats": 2,
}


def _build_models(seed: int, scale: float):
    dataset = MovieLensDataset(scale=scale, seed=seed)
    config = YouTubeDNNConfig(
        num_items=dataset.num_items,
        demographic_cardinalities=(dataset.num_users, 3, 7, 21, 450),
        seed=seed,
    )
    filtering = YouTubeDNNFiltering(config)
    ranking = YouTubeDNNRanking(config)
    workload = [
        ServeQuery.make(
            dataset.histories[user],
            dataset.demographics[user],
            dataset.ranking_context[user],
        )
        for user in range(dataset.num_users)
    ]
    return dataset, filtering, ranking, workload


def run_cost_study(
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    price_book: Optional[PriceBook] = None,
    **overrides,
) -> ExperimentReport:
    """Run the dollar-cost study and fold it into a report.

    ``price_book`` overrides the default rates (the pinned invariants
    are relative, so they hold for any sane book); ``trace_out`` /
    ``metrics_out`` export the telemetry plane -- the dollar totals
    land in the Prometheus textfile as ``repro_dollars_*`` series next
    to the energy ones.
    """
    params = dict(COST_STUDY_DEFAULTS)
    params.update(overrides)
    book = price_book or PriceBook()
    telemetry = Telemetry() if (trace_out or metrics_out) else None
    report = ExperimentReport(
        "E-COST",
        "Dollar-cost execution models (eager/lazy/hybrid) + workload analyzer",
    )
    dataset, filtering, ranking, workload = _build_models(seed, params["scale"])
    mapping = WorkloadMapping(movielens_table_specs())
    top_k = params["top_k"]
    num_shards = params["num_shards"]

    def build_fleet():
        return make_sharded_engine(
            "imars",
            filtering,
            ranking,
            num_shards,
            mapping=mapping,
            num_candidates=params["num_candidates"],
            top_k=top_k,
            seed=seed,
        )

    # -- calibrate the operating point against one IMC engine ------------
    probe = make_sharded_engine(
        "imars",
        filtering,
        ranking,
        1,
        mapping=mapping,
        num_candidates=params["num_candidates"],
        top_k=top_k,
        seed=seed,
    )
    batch_one_s = probe.recommend_query(workload[0]).cost.latency_s
    probe_batch = probe.serve_batch(
        [workload[user % len(workload)] for user in range(params["probe_batch_size"])]
    )
    capacity_qps = params["probe_batch_size"] / probe_batch.cost.latency_s
    rate_qps = params["load_factor"] * capacity_qps
    expected_duration_s = params["num_requests"] / rate_qps
    cache_capacity = max(4, dataset.num_users // params["cache_fraction"])
    scheduler_config = MicroBatchConfig(
        max_batch_size=params["max_batch_size"],
        max_wait_s=params["max_wait_batch_ones"] * batch_one_s,
    )

    traces = {
        "diurnal": DiurnalTraffic(
            base_qps=rate_qps,
            num_users=dataset.num_users,
            amplitude=params["diurnal_amplitude"],
            period_s=expected_duration_s,
            seed=seed,
            stream=160,
        ).generate(params["num_requests"]),
        "bursty": BurstyTraffic(
            calm_qps=params["burst_calm_factor"] * rate_qps,
            burst_qps=params["burst_spike_factor"] * rate_qps,
            num_users=dataset.num_users,
            mean_calm_s=params["calm_sojourn_requests"] / rate_qps,
            mean_burst_s=params["burst_sojourn_requests"] / rate_qps,
            seed=seed,
            stream=173,
        ).generate(params["num_requests"]),
    }

    def session_factory(label: str, repetition_aware: bool):
        def build() -> ServingSession:
            if repetition_aware:
                cache = RepetitionAwareCache(
                    capacity=cache_capacity,
                    rows_per_entry=top_k,
                    min_repeats=params["min_repeats"],
                )
            else:
                cache = ServingCache(
                    capacity=cache_capacity, rows_per_entry=top_k
                )
            return ServingSession(
                build_fleet(),
                workload,
                scheduler=MicroBatchScheduler(scheduler_config),
                cache=cache,
                label=label,
                telemetry=telemetry,
                price_book=book,
            )

        return build

    models = {
        "lazy": LazyExecutionModel(),
        "eager": EagerExecutionModel(
            traffic_fraction=params["eager_traffic_fraction"]
        ),
        "hybrid": HybridExecutionModel(
            recurrence_threshold=params["recurrence_threshold"]
        ),
    }

    outcomes: Dict[str, Dict[str, ExecutionOutcome]] = {}
    recommendations: Dict[str, str] = {}
    for trace_name, requests in traces.items():
        features = analyze_trace(requests)
        recommendations[trace_name] = recommend_execution_model(features)
        report.note(f"{trace_name}:{features.format_row().rstrip()}")
        report.note(
            f"{trace_name}: analyzer recommends "
            f"'{recommendations[trace_name]}'"
        )
        outcomes[trace_name] = {}
        for model_name, model in models.items():
            outcome = model.execute(
                session_factory(
                    f"cost {trace_name} {model_name}",
                    repetition_aware=(model_name == "hybrid"),
                ),
                requests,
            )
            outcomes[trace_name][model_name] = outcome
            report.note(f"{trace_name}:{outcome.format_row().rstrip()}")

    # -- pinned invariants ------------------------------------------------
    for trace_name, arms in outcomes.items():
        worst = max(arms["eager"].dollars, arms["lazy"].dollars)
        report.add(
            f"{trace_name}: hybrid $ <= max(eager $, lazy $)",
            1,
            int(arms["hybrid"].dollars <= worst),
        )
    rerun = models["lazy"].execute(
        session_factory("cost diurnal lazy rerun", repetition_aware=False),
        traces["diurnal"],
    )
    report.add(
        "dollar totals bit-stable across repeated seeded runs",
        1,
        int(rerun.dollars == outcomes["diurnal"]["lazy"].dollars),
    )
    report.add(
        "SLO report dollar column == price ledger total",
        1,
        int(
            all(
                outcome.report.dollars_total
                == outcome.result.price_ledger.total()
                for arms in outcomes.values()
                for outcome in arms.values()
            )
        ),
    )
    report.add(
        "analyzer: eager on diurnal, hybrid on bursty",
        1,
        int(
            recommendations["diurnal"] == "eager"
            and recommendations["bursty"] == "hybrid"
        ),
    )
    report.add(
        "diurnal: eager hit rate >= lazy hit rate",
        1,
        int(
            outcomes["diurnal"]["eager"].report.cache_hit_rate
            >= outcomes["diurnal"]["lazy"].report.cache_hit_rate
        ),
    )
    report.add(
        "eager precompute billed off-peak (discounted Warm-up rows)",
        1,
        int(
            all(
                arms["eager"].result.price_ledger.by_category().get("Warm-up", 0.0)
                > 0.0
                for arms in outcomes.values()
            )
        ),
    )
    report.add(
        "hybrid repetition-aware cache bypasses one-off fills",
        1,
        int(
            all(
                arms["hybrid"].result.cache_stats.get("bypassed", 0) > 0
                for arms in outcomes.values()
            )
        ),
    )

    for trace_name, arms in outcomes.items():
        breakdown = arms["hybrid"].result.price_ledger.by_category()
        cache_fees = sum(
            dollars
            for category, dollars in breakdown.items()
            if category.startswith("Cache-")
        )
        report.note(
            f"{trace_name}: hybrid bill "
            f"${arms['hybrid'].dollars:.6f} "
            f"(cache service fees ${cache_fees:.8f}); "
            f"warmed {len(arms['hybrid'].precomputed_users)} users vs "
            f"eager's {len(arms['eager'].precomputed_users)}"
        )
    report.note(
        f"offered load {rate_qps:,.0f} q/s over {num_shards} shards; "
        f"rates: IMC ${book.imc_per_hour:.2f}/h, cache "
        f"${book.cache_put_per_million:.2f}/M puts, off-peak x"
        f"{book.off_peak_discount:.2f}."
    )
    report.extras["outcomes"] = outcomes
    report.extras["recommendations"] = recommendations
    report.extras["price_book"] = book
    report.extras["rate_qps"] = rate_qps
    if telemetry is not None:
        telemetry.export(trace_out, metrics_out)
    return report
