"""E6 -- Sec. IV-C2: NNS operation comparison.

The filtering stage's nearest-neighbour search on the MovieLens ItET
(~3000 items, 32-d embeddings, 256-bit LSH signatures):

* GPU, original cosine distance: 13.6 us, 0.34 mJ per input;
* GPU, LSH 256-bit Hamming:      6.97 us, 0.15 mJ;
* iMARS TCAM threshold search: published as 3.8e4x latency and 2.8e4x
  energy improvement over the GPU LSH search.

iMARS's search latency is one parallel array search (O(1) array time,
Sec. IV-C2), reproduced here exactly.  On energy our dynamic model charges
only the signature arrays' search FoM, which lands *above* the published
improvement factor (the paper does not break down what its NNS energy
includes); the reproduction target is the shape -- four-plus orders of
magnitude -- and the documented gap is reported alongside.
"""

from __future__ import annotations

from repro.core.accelerator import IMARSCostModel
from repro.core.mapping import WorkloadMapping
from repro.data.movielens import MOVIELENS_NUM_ITEMS, movielens_table_specs
from repro.experiments.common import ExperimentReport
from repro.gpu.kernels import gpu_nns_cosine, gpu_nns_lsh

__all__ = ["run_nns_comparison", "PAPER_NNS"]

#: Published Sec. IV-C2 values.
PAPER_NNS = {
    "gpu_cosine_us": 13.6,
    "gpu_cosine_mj": 0.34,
    "gpu_lsh_us": 6.97,
    "gpu_lsh_mj": 0.15,
    "imars_latency_improvement": 3.8e4,
    "imars_energy_improvement": 2.8e4,
}


def run_nns_comparison(
    num_items: int = MOVIELENS_NUM_ITEMS,
    embedding_dim: int = 32,
    signature_bits: int = 256,
) -> ExperimentReport:
    """Price all three NNS implementations and compare with the paper."""
    report = ExperimentReport("E6", "Sec. IV-C2: NNS operation comparison")

    gpu_cosine = gpu_nns_cosine(num_items, embedding_dim)
    gpu_lsh = gpu_nns_lsh(num_items, signature_bits)
    mapping = WorkloadMapping(movielens_table_specs())
    model = IMARSCostModel(mapping)
    imars_search = model.nns_operation(include_drain=False)

    report.add("GPU cosine latency", PAPER_NNS["gpu_cosine_us"], gpu_cosine.latency_us, "us")
    report.add("GPU cosine energy", PAPER_NNS["gpu_cosine_mj"], gpu_cosine.energy_mj, "mJ")
    report.add("GPU LSH latency", PAPER_NNS["gpu_lsh_us"], gpu_lsh.latency_us, "us")
    report.add("GPU LSH energy", PAPER_NNS["gpu_lsh_mj"], gpu_lsh.energy_mj, "mJ")

    latency_improvement = imars_search.speedup_over(gpu_lsh)
    energy_improvement = imars_search.energy_reduction_over(gpu_lsh)
    report.add(
        "iMARS latency improvement over GPU LSH",
        PAPER_NNS["imars_latency_improvement"],
        latency_improvement,
        "x",
    )
    report.add(
        "iMARS energy improvement over GPU LSH",
        PAPER_NNS["imars_energy_improvement"],
        energy_improvement,
        "x",
    )
    report.note(
        "iMARS search = one parallel TCAM threshold match across the "
        f"{mapping.itet().signature_cmas} signature CMAs "
        f"({imars_search.energy_pj:.1f} pJ, {imars_search.latency_ns:.2f} ns). "
        "The energy-improvement factor exceeds the published 2.8e4x because "
        "only dynamic search energy is charged here; the shape target "
        "(>= 4 orders of magnitude) holds."
    )
    report.extras["gpu_cosine"] = gpu_cosine
    report.extras["gpu_lsh"] = gpu_lsh
    report.extras["imars_search"] = imars_search
    return report
