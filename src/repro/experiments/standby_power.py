"""A7 -- standby-power study: the FeFET non-volatility benefit.

Quantifies Sec. II-B's argument for FeFET CMAs over CMOS ones -- "lower
standby power (a result of the device's non-volatility)" -- at the fabric
level: an SRAM-based iMARS must burn retention power in all 4096 arrays
between queries, while the FeFET fabric retains the embedding tables for
free.  At realistic serving loads the standby term dominates an SRAM
design's energy and is negligible for FeFET.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.accelerator import IMARSCostModel
from repro.core.config import PAPER_CONFIG
from repro.core.mapping import FILTERING, WorkloadMapping
from repro.core.power import StandbyPowerModel, standby_comparison
from repro.data.movielens import movielens_table_specs
from repro.experiments.common import ExperimentReport

__all__ = ["run_standby_power"]


def run_standby_power(
    queries_per_second: Sequence[float] = (10.0, 100.0, 1000.0),
) -> ExperimentReport:
    """Compare FeFET vs SRAM fabric energy across serving loads."""
    report = ExperimentReport("A7", "Standby power: FeFET non-volatility benefit")
    model = StandbyPowerModel()
    comparison = standby_comparison(PAPER_CONFIG, idle_seconds=1.0, model=model)
    report.add(
        "standby advantage (SRAM/FeFET) >= 100x",
        1,
        int(comparison["advantage"] >= 100.0),
    )

    # Active energy per query (the Table III ET op as a proxy for the
    # memory subsystem's dynamic work).
    mapping = WorkloadMapping(movielens_table_specs())
    active_per_query_uj = (
        IMARSCostModel(mapping).et_operation(FILTERING).energy_uj
    )

    rows = []
    for qps in queries_per_second:
        idle_fraction = 1.0  # arrays idle essentially the whole second
        fefet_standby = model.standby_energy(
            PAPER_CONFIG.total_cmas, idle_fraction, "fefet"
        ).energy_uj
        sram_standby = model.standby_energy(
            PAPER_CONFIG.total_cmas, idle_fraction, "sram"
        ).energy_uj
        active = active_per_query_uj * qps
        rows.append(
            {
                "qps": qps,
                "fefet_total_uj_per_s": active + fefet_standby,
                "sram_total_uj_per_s": active + sram_standby,
                "sram_standby_share": sram_standby / (active + sram_standby),
                "fefet_standby_share": fefet_standby / (active + fefet_standby),
            }
        )

    low_load = rows[0]
    report.add(
        "SRAM energy standby-dominated at low load",
        1,
        int(low_load["sram_standby_share"] > 0.9),
    )
    report.add(
        "FeFET cuts low-load fabric energy >= 100x",
        1,
        int(
            low_load["sram_total_uj_per_s"]
            > 100.0 * low_load["fefet_total_uj_per_s"]
        ),
    )
    high_load = rows[-1]
    report.add(
        "FeFET total energy lower at every load",
        1,
        int(
            all(
                row["fefet_total_uj_per_s"] < row["sram_total_uj_per_s"]
                for row in rows
            )
        ),
    )
    report.extras["rows"] = rows
    report.extras["comparison"] = comparison
    report.note(
        f"Fabric of {comparison['num_cmas']} CMAs: FeFET standby "
        f"{comparison['fefet_energy_uj']:.0f} uJ/s vs SRAM "
        f"{comparison['sram_energy_uj']:.0f} uJ/s "
        f"({comparison['advantage']:.0f}x). At {high_load['qps']:.0f} q/s the "
        f"FeFET fabric spends {high_load['fefet_standby_share'] * 100:.1f}% "
        "of memory-subsystem energy on standby."
    )
    return report
