"""NumPy neural-network substrate (offline replacement for PyTorch)."""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Embedding,
    EmbeddingBag,
    L2Normalize,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import BCEWithLogitsLoss, SampledSoftmaxLoss
from repro.nn.optim import SGD, Adam
from repro.nn.mlp import build_mlp, mlp_flops, parse_layer_spec
from repro.nn.io import load_module, save_module

__all__ = [
    "load_module",
    "save_module",
    "Module",
    "Parameter",
    "Sequential",
    "Embedding",
    "EmbeddingBag",
    "L2Normalize",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "BCEWithLogitsLoss",
    "SampledSoftmaxLoss",
    "SGD",
    "Adam",
    "build_mlp",
    "mlp_flops",
    "parse_layer_spec",
]
