"""MLP builder matching the paper's Table I layer-size notation.

Table I specifies DNN stacks as dash-separated widths: the YouTubeDNN
filtering tower is "128-64-32", its ranking net "128-1", DLRM's bottom MLP
"256-128-32" and top MLP "256-64-1".  :func:`build_mlp` turns such a spec
into a :class:`~repro.nn.module.Sequential` of Linear + ReLU layers with a
configurable head.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.nn.layers import L2Normalize, Linear, ReLU, Sigmoid
from repro.nn.module import Module, Sequential

__all__ = ["build_mlp", "parse_layer_spec", "mlp_flops"]


def parse_layer_spec(spec: Union[str, Sequence[int]]) -> List[int]:
    """Parse "128-64-32" (or a list of ints) into layer widths."""
    if isinstance(spec, str):
        try:
            widths = [int(part) for part in spec.split("-")]
        except ValueError as error:
            raise ValueError(f"malformed layer spec {spec!r}") from error
    else:
        widths = [int(width) for width in spec]
    if not widths or any(width < 1 for width in widths):
        raise ValueError(f"layer widths must be positive, got {widths}")
    return widths


def build_mlp(
    input_dim: int,
    spec: Union[str, Sequence[int]],
    head: str = "none",
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build an MLP: Linear(+ReLU) per hidden width, then an optional head.

    Parameters
    ----------
    input_dim:
        Width of the input activation.
    spec:
        Table-I style width list; the last width is the output size.
    head:
        ``"none"`` (linear output), ``"sigmoid"`` (CTR probability) or
        ``"l2norm"`` (normalised user embedding, YouTubeDNN filtering).
    """
    widths = parse_layer_spec(spec)
    generator = rng or np.random.default_rng(0)
    layers: List[Module] = []
    previous = input_dim
    for position, width in enumerate(widths):
        layers.append(Linear(previous, width, rng=generator))
        is_last = position == len(widths) - 1
        if not is_last:
            layers.append(ReLU())
        previous = width
    if head == "sigmoid":
        layers.append(Sigmoid())
    elif head == "l2norm":
        layers.append(L2Normalize())
    elif head != "none":
        raise ValueError(f"unknown head {head!r} (expected none/sigmoid/l2norm)")
    return Sequential(layers)


def mlp_flops(input_dim: int, spec: Union[str, Sequence[int]]) -> int:
    """Multiply-accumulate count of one forward pass (used by the GPU model)."""
    widths = parse_layer_spec(spec)
    total = 0
    previous = input_dim
    for width in widths:
        total += 2 * previous * width  # multiply + add per weight
        previous = width
    return total
