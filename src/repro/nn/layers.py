"""Layers for the RecSys DNN stacks: dense, activations, embeddings.

The two models the paper evaluates need exactly this layer set:

* YouTubeDNN filtering tower: embeddings -> average pooling -> MLP
  (128-64-32) -> L2-normalised user embedding (Table I).
* YouTubeDNN ranking model: embeddings + user vector -> MLP (128-1) -> CTR.
* DLRM: dense bottom MLP (256-128-32), per-feature EmbeddingBags, pairwise
  feature interaction, top MLP (256-64-1) -> CTR.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.stable import stable_matmul

__all__ = [
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "L2Normalize",
    "Embedding",
    "EmbeddingBag",
]


class Linear(Module):
    """Fully-connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature dimensions must be positive")
        generator = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))  # Glorot uniform
        self.weight = Parameter(
            generator.uniform(-limit, limit, size=(in_features, out_features)),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self.in_features = in_features
        self.out_features = out_features
        self._input_cache: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ValueError(
                f"expected (batch, {self.in_features}) input, got {inputs.shape}"
            )
        self._input_cache = inputs
        # stable_matmul keeps each output row bitwise-independent of the
        # batch it rides in -- the invariant the serving subsystem's
        # scalar-vs-vectorised equivalence contract rests on.
        outputs = stable_matmul(inputs, self.weight.data)
        if self.bias is not None:
            outputs = outputs + self.bias.data
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None:
            raise RuntimeError("backward called before forward")
        inputs = self._input_cache
        self.weight.grad += inputs.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0.0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Sigmoid(Module):
    """Logistic activation (used by the CTR output head)."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        clipped = np.clip(inputs, -60.0, 60.0)
        self._output = 1.0 / (1.0 + np.exp(-clipped))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output * self._output)


class L2Normalize(Module):
    """Row-wise L2 normalisation (the YouTubeDNN user-embedding head).

    Normalised outputs make inner product equivalent to cosine similarity,
    which is what the filtering-stage NNS assumes.
    """

    def __init__(self, epsilon: float = 1e-12):
        super().__init__()
        self.epsilon = epsilon
        self._input_cache: Optional[np.ndarray] = None
        self._norms: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_cache = inputs
        self._norms = np.sqrt((inputs * inputs).sum(axis=1, keepdims=True)) + self.epsilon
        return inputs / self._norms

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_cache is None or self._norms is None:
            raise RuntimeError("backward called before forward")
        inputs, norms = self._input_cache, self._norms
        normalised = inputs / norms
        dot = (grad_output * normalised).sum(axis=1, keepdims=True)
        return (grad_output - normalised * dot) / norms


class Embedding(Module):
    """Lookup table: integer indices -> dense rows.

    This is the software view of an embedding table; the hardware view
    (rows inside CMAs) lives in :mod:`repro.core.mapping`.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.1,
    ):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError("embedding table dimensions must be positive")
        generator = rng or np.random.default_rng(0)
        self.weight = Parameter(
            generator.normal(0.0, scale, size=(num_embeddings, embedding_dim)),
            name="weight",
        )
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self._indices_cache: Optional[np.ndarray] = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        lookup = np.asarray(indices)
        if not np.issubdtype(lookup.dtype, np.integer):
            raise TypeError("embedding indices must be integers")
        if lookup.min(initial=0) < 0 or lookup.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        self._indices_cache = lookup
        return self.weight.data[lookup]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._indices_cache is None:
            raise RuntimeError("backward called before forward")
        flat_indices = self._indices_cache.reshape(-1)
        flat_grads = grad_output.reshape(-1, self.embedding_dim)
        np.add.at(self.weight.grad, flat_indices, flat_grads)
        return np.zeros(0)  # indices carry no gradient


class EmbeddingBag(Module):
    """Embedding lookup + pooling over a bag of indices per sample.

    This is *the* sparse-feature operator of RecSys (Sec. II-A): a sample's
    multi-hot feature is a variable-length list of indices whose embedding
    rows are pooled (summed or averaged).  In iMARS the pooling runs as
    in-memory additions + adder trees; here it is the reference software
    semantics.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        mode: str = "sum",
        rng: Optional[np.random.Generator] = None,
        scale: float = 0.1,
    ):
        super().__init__()
        if mode not in ("sum", "mean"):
            raise ValueError(f"pooling mode must be 'sum' or 'mean', got {mode!r}")
        generator = rng or np.random.default_rng(0)
        self.weight = Parameter(
            generator.normal(0.0, scale, size=(num_embeddings, embedding_dim)),
            name="weight",
        )
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.mode = mode
        self._bags_cache: Optional[Sequence[Sequence[int]]] = None

    def forward(self, bags: Sequence[Sequence[int]]) -> np.ndarray:
        pooled = np.zeros((len(bags), self.embedding_dim), dtype=np.float64)
        for sample_index, bag in enumerate(bags):
            indices = np.asarray(list(bag), dtype=np.int64)
            if indices.size == 0:
                continue
            if indices.min() < 0 or indices.max() >= self.num_embeddings:
                raise IndexError("embedding index out of range")
            rows = self.weight.data[indices]
            pooled[sample_index] = rows.sum(axis=0)
            if self.mode == "mean":
                pooled[sample_index] /= indices.size
        self._bags_cache = bags
        return pooled

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._bags_cache is None:
            raise RuntimeError("backward called before forward")
        for sample_index, bag in enumerate(self._bags_cache):
            indices = np.asarray(list(bag), dtype=np.int64)
            if indices.size == 0:
                continue
            grad = grad_output[sample_index]
            if self.mode == "mean":
                grad = grad / indices.size
            np.add.at(self.weight.grad, indices, grad)
        return np.zeros(0)  # indices carry no gradient
