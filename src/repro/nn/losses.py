"""Loss functions for RecSys training.

* :class:`BCEWithLogitsLoss` -- binary cross-entropy on logits, the CTR
  training objective of the ranking stage (DLRM and YouTubeDNN ranking).
* :class:`SampledSoftmaxLoss` -- the retrieval objective of the YouTubeDNN
  filtering tower: classify the next-watched item among a sampled set of
  negatives, using inner products between the user embedding and item
  embeddings.

Each loss returns a scalar value from ``forward`` and produces the gradient
w.r.t. its inputs from ``backward``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["BCEWithLogitsLoss", "SampledSoftmaxLoss"]


class BCEWithLogitsLoss:
    """Numerically-stable binary cross-entropy over logits."""

    def __init__(self) -> None:
        self._logits: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64).reshape(-1)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1)
        if logits.shape != targets.shape:
            raise ValueError(f"shape mismatch: {logits.shape} vs {targets.shape}")
        if ((targets < 0.0) | (targets > 1.0)).any():
            raise ValueError("targets must lie in [0, 1]")
        self._logits, self._targets = logits, targets
        # log(1 + exp(-|z|)) formulation avoids overflow for large |z|.
        losses = np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        return float(losses.mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits: (sigmoid(z) - y)/n."""
        if self._logits is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        probabilities = 1.0 / (1.0 + np.exp(-np.clip(self._logits, -60.0, 60.0)))
        return (probabilities - self._targets) / self._logits.shape[0]

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)


class SampledSoftmaxLoss:
    """Sampled-softmax over (user, positive item, sampled negatives).

    ``forward`` takes the user embeddings ``(batch, dim)`` and the item
    embeddings of the candidates ``(batch, 1 + negatives, dim)`` where
    column 0 is the positive item.  Scores are inner products scaled by a
    temperature; the loss is cross-entropy against class 0.

    ``backward`` returns ``(grad_users, grad_items)``.
    """

    def __init__(self, temperature: float = 1.0):
        if temperature <= 0.0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature
        self._users: Optional[np.ndarray] = None
        self._items: Optional[np.ndarray] = None
        self._probabilities: Optional[np.ndarray] = None

    def forward(self, users: np.ndarray, items: np.ndarray) -> float:
        users = np.asarray(users, dtype=np.float64)
        items = np.asarray(items, dtype=np.float64)
        if users.ndim != 2 or items.ndim != 3 or items.shape[0] != users.shape[0]:
            raise ValueError("expected users (b, d) and items (b, k, d)")
        if items.shape[2] != users.shape[1]:
            raise ValueError("embedding dimensions of users and items differ")
        scores = np.einsum("bd,bkd->bk", users, items) / self.temperature
        scores = scores - scores.max(axis=1, keepdims=True)
        exp_scores = np.exp(scores)
        probabilities = exp_scores / exp_scores.sum(axis=1, keepdims=True)
        self._users, self._items, self._probabilities = users, items, probabilities
        # Cross-entropy against class 0 (the positive item).
        return float(-np.log(probabilities[:, 0] + 1e-12).mean())

    def backward(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._probabilities is None or self._users is None or self._items is None:
            raise RuntimeError("backward called before forward")
        batch = self._users.shape[0]
        grad_scores = self._probabilities.copy()
        grad_scores[:, 0] -= 1.0
        grad_scores /= batch * self.temperature
        grad_users = np.einsum("bk,bkd->bd", grad_scores, self._items)
        grad_items = np.einsum("bk,bd->bkd", grad_scores, self._users)
        return grad_users, grad_items

    def __call__(self, users: np.ndarray, items: np.ndarray) -> float:
        return self.forward(users, items)
