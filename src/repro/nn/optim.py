"""Optimisers for the NumPy module system: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam"]


class _Optimizer:
    """Shared bookkeeping: parameter list, zero_grad, step interface."""

    def __init__(self, parameters: Sequence[Parameter], lr: float):
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            gradient = parameter.grad
            if self.weight_decay > 0.0:
                gradient = gradient + self.weight_decay * parameter.data
            if self.momentum > 0.0:
                key = id(parameter)
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + gradient
                self._velocity[key] = velocity
                gradient = velocity
            parameter.data -= self.lr * gradient


class Adam(_Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter in self.parameters:
            gradient = parameter.grad
            if self.weight_decay > 0.0:
                gradient = gradient + self.weight_decay * parameter.data
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            first = self.beta1 * first + (1.0 - self.beta1) * gradient
            second = self.beta2 * second + (1.0 - self.beta2) * gradient * gradient
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data -= self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
