"""Model (de)serialisation: save/load trained parameters as ``.npz``.

A downstream user trains once and serves many times; these helpers persist
any :class:`~repro.nn.module.Module`'s ``state_dict`` to a compressed npz
archive and restore it with shape checking.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.nn.module import Module

__all__ = ["save_module", "load_module"]

#: Key prefix guarding against loading arbitrary npz files as models.
_PREFIX = "param::"


def save_module(module: Module, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the module's parameters to *path* (``.npz`` appended if missing)."""
    target = pathlib.Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz")
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez_compressed(
        target, **{_PREFIX + name: value for name, value in state.items()}
    )
    return target


def load_module(module: Module, path: Union[str, pathlib.Path]) -> Module:
    """Restore parameters saved by :func:`save_module` into *module*.

    The module must already have the right architecture; shapes are
    validated by ``load_state_dict``.
    """
    source = pathlib.Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no saved model at {source}")
    with np.load(source) as archive:
        state = {}
        for key in archive.files:
            if not key.startswith(_PREFIX):
                raise ValueError(
                    f"{source} is not a saved module (unexpected key {key!r})"
                )
            state[key[len(_PREFIX):]] = archive[key]
    module.load_state_dict(state)
    return module
