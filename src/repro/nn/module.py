"""Minimal NumPy neural-network module system.

The paper trains/serves two small RecSys models (YouTubeDNN and DLRM) whose
DNN stacks are 2-3 layer MLPs.  With no deep-learning framework available
offline, this package implements the required subset from scratch: modules
with explicit ``forward``/``backward`` passes, trainable
:class:`Parameter` objects, and containers.

Conventions
-----------
* Activations are ``(batch, features)`` float64 arrays.
* ``forward`` caches whatever ``backward`` needs; ``backward`` receives the
  gradient of the loss w.r.t. the module output and returns the gradient
  w.r.t. the module input, accumulating parameter gradients in
  ``Parameter.grad``.
* Gradient correctness is enforced by finite-difference tests in
  ``tests/nn/test_gradients.py``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class: tracks child modules and parameters automatically."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration (mirrors the torch idiom, via attribute assignment) ----
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        object.__setattr__(self, key, value)

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children, depth-first."""
        found: List[Parameter] = list(self._parameters.values())
        for child in self._modules.values():
            found.extend(child.parameters())
        return found

    def named_parameters(self, prefix: str = "") -> Iterator:
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    # -- compute ---------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # -- (de)serialisation -------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, layers: Sequence[Module]):
        super().__init__()
        self.layers: List[Module] = list(layers)
        for index, layer in enumerate(self.layers):
            self._modules[f"layer{index}"] = layer

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        activation = inputs
        for layer in self.layers:
            activation = layer(activation)
        return activation

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
