"""Batch-size-stable dense matmul.

The serving subsystem promises *bit-identical* recommendations whether a
query is served alone or inside a vectorised micro-batch (the scalar
reference oracle vs the multi-query kernels).  BLAS breaks that promise
out of the box: optimised GEMM backends dispatch different kernels for
degenerate shapes -- a 1-row batch takes the GEMV path and a 1-column
output (the ranking net's final ``128-1`` layer) takes a dot-product
path -- and those kernels reduce in a different order than the blocked
GEMM used for general shapes, so the same row of inputs can produce
results differing in the last ulp depending on the batch it rides in.

:func:`stable_matmul` removes the degenerate shapes instead of fighting
the backend: the batch is padded to at least two rows (duplicating a
row) and the weight matrix to at least eight columns (appending zero
columns), so every call lands on the same row-stable blocked-GEMM
kernel; the padding is sliced away from the result.  Empirically (and
pinned by the scalar-vs-vectorised equivalence suite) each output row
then depends only on its own input row -- batch-of-1 and batch-of-100k
agree bitwise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_matmul"]

#: Narrowest output width that keeps the BLAS backend on its blocked
#: (row-stable) GEMM kernel; narrower outputs fall into dot/GEMV paths
#: whose reduction order varies with the batch size.
_MIN_STABLE_COLS = 8


def stable_matmul(inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``inputs @ weights`` with rows bitwise-independent of batch size.

    Parameters
    ----------
    inputs:
        ``(batch, in_features)`` float64 matrix.
    weights:
        ``(in_features, out_features)`` float64 matrix.
    """
    rows, cols = inputs.shape[0], weights.shape[1]
    padded_inputs = inputs
    if rows == 1:
        padded_inputs = np.concatenate([inputs, inputs], axis=0)
    padded_weights = weights
    if cols < _MIN_STABLE_COLS:
        padded_weights = np.concatenate(
            [weights, np.zeros((weights.shape[0], _MIN_STABLE_COLS - cols))],
            axis=1,
        )
    product = padded_inputs @ padded_weights
    if padded_inputs is inputs and padded_weights is weights:
        return product
    return np.ascontiguousarray(product[:rows, :cols])
